"""Cross-lane reachability model for the race rules (RPR008–RPR010).

The paper's parallel scheme runs one *lane* per simulated core: each core's
``simulate(cycles)`` leg executes concurrently with the other lanes and
synchronizes only at quantum boundaries.  Any state a lane can reach that
another lane (or the barrier-side kernel) can also reach is a would-be data
race the moment the legs actually run in parallel — unless every mutation
goes through a sanctioned channel (``repro.fabric.MemoryPort`` traffic,
queued IRQs, quantum-barrier merges).

This module builds the static model those rules share, once per lint run:

* a **call graph** over all scanned classes/functions (name-based, so it
  follows ``self.m()`` precisely and cross-object ``obj.m()`` calls
  conservatively when the method name is distinctive);
* **lane roots** — code that executes inside a per-core simulate leg:
  ``simulate``/``_invoke_simulate``/``_handle_mmio`` overrides on
  ``Processor`` subclasses, plus every TLM target transport callback
  (functions passed to ``TargetSocket(...)`` and ``*_transport`` /
  ``transport_dbg`` methods) because MMIO is always served from inside the
  initiating core's leg;
* **barrier roots** — elaboration and quantum-barrier/merge code
  (``__init__``, ``end_of_elaboration``, ``start_of_simulation``,
  ``sync_wait``, ``_delta_cycle``, update-phase methods), which is the only
  place cross-lane state may be touched freely;
* a **sharing classification** for every class:

  - ``cross-lane-shared`` — instances are reachable from two or more core
    lanes: the class owns a :class:`TargetSocket` (any initiator can reach a
    TLM target through the router), fans in over cores (an ``__init__``
    parameter like ``num_cpus``), or is explicitly marked with a class
    attribute ``CROSS_LANE_SHARED = True``;
  - ``lane-local`` — per-core state: ``Processor`` subclasses and classes
    marked ``LANE_LOCAL = True``;
  - ``kernel-owned`` — the scheduler itself (files under ``systemc/``),
    which *is* the barrier infrastructure;
  - ``unshared`` — everything else.

The model intentionally over-approximates reachability (a finding means
"provably reachable under name-based dispatch", not "proven racy") — the
committed baseline (:mod:`repro.analysis.baseline`) records the reviewed
findings that are barrier-safe today and must migrate to sanctioned
channels before the parallel kernel lands.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .engine import LintContext, SourceModule

#: methods that *are* a per-core simulate leg (on Processor subclasses)
SIMULATE_LEG_NAMES = {"simulate", "_invoke_simulate", "_handle_mmio"}
#: method-name shapes that identify TLM target transport callbacks
TRANSPORT_SUFFIXES = ("_transport", "transport_dbg")
#: elaboration / quantum-barrier methods — the sanctioned mutation context
BARRIER_ROOT_NAMES = {
    "__init__", "end_of_elaboration", "start_of_simulation", "elaborate",
    "sync_wait", "_update", "_delta_cycle", "_advance_time",
}
#: ``__init__`` parameters that mean "this instance serves every core"
FAN_IN_PARAMS = {"num_cpus", "num_cores", "cpus", "cores", "num_harts"}
#: cross-object calls resolve by bare method name only when at most this
#: many classes define the name (generic names like ``write`` resolve to
#: too many candidates to mean anything)
MAX_DISPATCH_CANDIDATES = 3

#: sharing classification labels
CROSS_LANE_SHARED = "cross-lane-shared"
LANE_LOCAL = "lane-local"
KERNEL_OWNED = "kernel-owned"
UNSHARED = "unshared"


class FunctionInfo:
    """One top-level function or method, with its full (nested) body."""

    __slots__ = ("name", "qualname", "class_name", "module", "node", "lineno")

    def __init__(self, name: str, class_name: Optional[str],
                 module: SourceModule, node: ast.AST):
        self.name = name
        self.class_name = class_name
        self.module = module
        self.node = node
        self.lineno = getattr(node, "lineno", 0)
        self.qualname = f"{class_name}.{name}" if class_name else name


class ClassInfo:
    """A scanned class plus the sharing signals found in its body."""

    def __init__(self, name: str, module: SourceModule, bases: List[str]):
        self.name = name
        self.module = module
        self.bases = bases
        self.methods: Dict[str, FunctionInfo] = {}
        self.owns_target_socket = False
        self.fan_in_param: Optional[str] = None
        self.marked_shared = False
        self.marked_lane_local = False
        #: attribute name -> class name, inferred from ``self.x = ClassName(…)``
        #: constructor assignments and annotated ``__init__`` parameters
        self.attr_types: Dict[str, str] = {}

    def sharing_reason(self) -> str:
        if self.marked_shared:
            return "explicitly marked CROSS_LANE_SHARED"
        if self.fan_in_param:
            return f"fans in over cores (__init__ takes {self.fan_in_param!r})"
        if self.owns_target_socket:
            return "owns a TargetSocket (TLM target reachable from every initiator)"
        return ""


def _attr_chain_root(node: ast.AST) -> Optional[ast.Attribute]:
    """Peel ``self.a[i].b[j]`` down to the ``self.a`` attribute, if any."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node
    return None


def _called_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    """Class name out of an annotation: ``X``, ``Optional[X]``, ``mod.X``."""
    if isinstance(node, ast.Subscript):          # Optional[X] / List[X]
        return _annotation_class(node.slice)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1].strip("[]")
    return None


def _camel(attr: str) -> str:
    return "".join(part.capitalize() for part in attr.split("_") if part)


class LaneModel:
    """Shared prescan state: call graph + lane/barrier reachability."""

    SHARED_KEY = "race.lane_model"

    def __init__(self):
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: List[FunctionInfo] = []
        #: bare name -> functions (methods of any class + module functions)
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        self._collected: Set[str] = set()      # module relpaths already seen
        self._lane_roots: Dict[FunctionInfo, str] = {}
        self._finalized = False
        #: qualname -> discovery chain from a lane root (root first)
        self.lane_chains: Dict[str, Tuple[str, ...]] = {}
        self.barrier_reachable: Set[str] = set()

    # -- construction -------------------------------------------------------
    @classmethod
    def of(cls, ctx: LintContext) -> "LaneModel":
        model = ctx.shared.get(cls.SHARED_KEY)
        if model is None:
            model = cls()
            ctx.shared[cls.SHARED_KEY] = model
        return model

    def collect(self, module: SourceModule) -> None:
        """Prescan one module (idempotent per relpath)."""
        if module.relpath in self._collected:
            return
        self._collected.add(module.relpath)
        self._finalized = False
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                self._collect_class(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(FunctionInfo(node.name, None, module, node))

    def _add_function(self, info: FunctionInfo) -> None:
        self.functions.append(info)
        self._by_name.setdefault(info.name, []).append(info)

    def _collect_class(self, module: SourceModule, node: ast.ClassDef) -> None:
        bases = [b.attr if isinstance(b, ast.Attribute) else getattr(b, "id", "")
                 for b in node.bases]
        info = ClassInfo(node.name, module, bases)
        # Last definition of a name wins (duplicates across fixture trees
        # would otherwise cross-contaminate; real packages are unique).
        self.classes[node.name] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(item.name, node.name, module, item)
                info.methods[item.name] = fn
                self._add_function(fn)
            elif isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        truthy = (isinstance(item.value, ast.Constant)
                                  and bool(item.value.value))
                        if target.id == "CROSS_LANE_SHARED" and truthy:
                            info.marked_shared = True
                        if target.id == "LANE_LOCAL" and truthy:
                            info.marked_lane_local = True
        ctor = info.methods.get("__init__")
        if ctor is not None:
            args = ctor.node.args
            names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
            for param in names:
                if param in FAN_IN_PARAMS:
                    info.fan_in_param = param
                    break
        for method in info.methods.values():
            for call in (n for n in ast.walk(method.node) if isinstance(n, ast.Call)):
                name = _called_name(call.func)
                if name == "TargetSocket":
                    info.owns_target_socket = True
            self._infer_attr_types(info, method)

    @staticmethod
    def _infer_attr_types(info: ClassInfo, method: FunctionInfo) -> None:
        """Record ``self.x -> ClassName`` from ctor calls and annotations.

        Resolution is deferred (names are checked against :attr:`classes`
        at query time), so collection order across modules does not matter.
        """
        args = method.node.args
        param_types: Dict[str, str] = {}
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            declared = _annotation_class(arg.annotation)
            if declared is not None:
                param_types[arg.arg] = declared
        for node in ast.walk(method.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            declared: Optional[str] = None
            if isinstance(value, ast.Call):
                name = _called_name(value.func)
                if name and name[:1].isupper():
                    declared = name
            elif isinstance(value, ast.Name):
                declared = param_types.get(value.id)
            if isinstance(node, ast.AnnAssign) and declared is None:
                declared = _annotation_class(node.annotation)
            if declared is not None:
                info.attr_types.setdefault(target.attr, declared)

    # -- base-class resolution ------------------------------------------------
    def _base_chain(self, class_name: str) -> Set[str]:
        seen: Set[str] = set()
        queue = deque([class_name])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is not None:
                queue.extend(info.bases)
        return seen

    def _resolve_self_method(self, class_name: str, method: str) -> Optional[FunctionInfo]:
        for candidate in self._base_chain(class_name):
            info = self.classes.get(candidate)
            if info is not None and method in info.methods:
                return info.methods[method]
        return None

    def _attr_class(self, class_name: str, attr: str) -> Optional[str]:
        """Class held in ``self.<attr>`` (for methods of ``class_name``).

        Tries inferred constructor-assignment types first (searched through
        the base chain, so ``self.mem`` set in ``Processor.__init__`` resolves
        from a ``KvmCpu`` method), then falls back to snake_case → CamelCase
        name matching (``self.host_ledger`` -> ``HostLedger``) for attributes
        initialised to ``None`` and attached later.
        """
        for candidate in self._base_chain(class_name):
            info = self.classes.get(candidate)
            if info is None:
                continue
            declared = info.attr_types.get(attr)
            if declared is not None and declared in self.classes:
                return declared
        camel = _camel(attr)
        if camel in self.classes:
            return camel
        return None

    # -- roots -----------------------------------------------------------------
    def _is_processor_class(self, class_name: str) -> bool:
        return "Processor" in self._base_chain(class_name)

    def _find_lane_roots(self) -> Dict[FunctionInfo, str]:
        roots: Dict[FunctionInfo, str] = {}

        def add(fn: Optional[FunctionInfo], why: str) -> None:
            if fn is not None and fn not in roots:
                roots[fn] = why

        for info in self.classes.values():
            for name, fn in info.methods.items():
                if name in SIMULATE_LEG_NAMES and self._is_processor_class(info.name):
                    add(fn, f"per-core simulate leg {fn.qualname}")
                if name.endswith(TRANSPORT_SUFFIXES[0]) or name == TRANSPORT_SUFFIXES[1]:
                    add(fn, f"TLM transport handler {fn.qualname}")
            # Functions handed to TargetSocket(...) are transport callbacks
            # even when their names do not match the naming convention.
            for fn in list(info.methods.values()):
                for call in (n for n in ast.walk(fn.node) if isinstance(n, ast.Call)):
                    if _called_name(call.func) != "TargetSocket":
                        continue
                    handed = list(call.args) + [kw.value for kw in call.keywords]
                    for arg in handed:
                        target: Optional[ast.AST] = arg
                        # self._make_x(...) — the maker's closure runs in-lane
                        if isinstance(target, ast.Call):
                            target = target.func
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            add(self._resolve_self_method(info.name, target.attr),
                                f"transport callback bound in {fn.qualname}")
        return roots

    def _find_barrier_roots(self) -> List[FunctionInfo]:
        return [fn for fn in self.functions if fn.name in BARRIER_ROOT_NAMES]

    # -- call graph -------------------------------------------------------------
    def _edges(self, fn: FunctionInfo) -> Iterable[FunctionInfo]:
        for call in (n for n in ast.walk(fn.node) if isinstance(n, ast.Call)):
            func = call.func
            if isinstance(func, ast.Name):
                for candidate in self._by_name.get(func.id, ()):
                    if candidate.class_name is None:
                        yield candidate
                continue
            if not isinstance(func, ast.Attribute):
                continue
            method = func.attr
            if method.startswith("__"):
                continue
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                resolved = None
                if fn.class_name is not None:
                    resolved = self._resolve_self_method(fn.class_name, method)
                if resolved is not None:
                    yield resolved
                    continue
            # self.attr.m() / self.attr[i].m() — resolve through the
            # attribute's inferred class, which beats bare-name dispatch
            # for generic names like ``read`` or ``add``.
            receiver = _attr_chain_root(func.value)
            if receiver is not None and fn.class_name is not None:
                owner = self._attr_class(fn.class_name, receiver.attr)
                if owner is not None:
                    resolved = self._resolve_self_method(owner, method)
                    if resolved is not None:
                        yield resolved
                        continue
            candidates = self._by_name.get(method, ())
            classes = {c.class_name for c in candidates}
            if 0 < len(classes) <= MAX_DISPATCH_CANDIDATES:
                yield from candidates

    def _finalize(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        self._lane_roots = self._find_lane_roots()
        # Lane reachability, keeping the first discovery chain for reports.
        self.lane_chains = {}
        queue = deque()
        for fn, why in self._lane_roots.items():
            self.lane_chains[fn.qualname] = (fn.qualname,)
            queue.append(fn)
        while queue:
            fn = queue.popleft()
            chain = self.lane_chains[fn.qualname]
            for callee in self._edges(fn):
                if callee.qualname in self.lane_chains:
                    continue
                self.lane_chains[callee.qualname] = chain + (callee.qualname,)
                queue.append(callee)
        # Barrier reachability (membership only).
        self.barrier_reachable = set()
        queue = deque(self._find_barrier_roots())
        for fn in queue:
            self.barrier_reachable.add(fn.qualname)
        while queue:
            fn = queue.popleft()
            for callee in self._edges(fn):
                if callee.qualname not in self.barrier_reachable:
                    self.barrier_reachable.add(callee.qualname)
                    queue.append(callee)

    # -- queries ------------------------------------------------------------------
    def lane_reachable(self, fn: FunctionInfo) -> bool:
        self._finalize()
        return fn.qualname in self.lane_chains

    def lane_chain(self, fn: FunctionInfo) -> Tuple[str, ...]:
        self._finalize()
        return self.lane_chains.get(fn.qualname, ())

    def lane_root_reason(self, fn: FunctionInfo) -> str:
        self._finalize()
        chain = self.lane_chains.get(fn.qualname)
        if not chain:
            return ""
        root = chain[0]
        for root_fn, why in self._lane_roots.items():
            if root_fn.qualname == root:
                return why
        return root

    def classify(self, class_name: str) -> str:
        """Sharing classification for one class (see module docstring)."""
        self._finalize()
        info = self.classes.get(class_name)
        if info is None:
            return UNSHARED
        if info.module.in_package_dir("systemc"):
            return KERNEL_OWNED
        if info.marked_lane_local:
            return LANE_LOCAL
        if info.marked_shared:
            return CROSS_LANE_SHARED
        if self._is_processor_class(info.name) and not info.owns_target_socket:
            return LANE_LOCAL
        if info.sharing_reason():
            return CROSS_LANE_SHARED
        return UNSHARED

    def classification_summary(self) -> Dict[str, List[str]]:
        """Class names grouped by sharing classification (for reports)."""
        self._finalize()
        summary: Dict[str, List[str]] = {
            CROSS_LANE_SHARED: [], LANE_LOCAL: [], KERNEL_OWNED: [], UNSHARED: [],
        }
        for name in sorted(self.classes):
            summary[self.classify(name)].append(name)
        return summary
