"""Benchmark harness: one experiment per figure of the paper's evaluation
(Figs. 5, 6a/6b, 7) plus ablations, with paper-claim checks and reporting."""

from . import ablations, fig5, fig6, fig7  # noqa: F401  (register experiments)
from .experiment import (
    Experiment,
    ExperimentResult,
    Expectation,
    Row,
    all_experiment_ids,
    get_experiment,
)
from .measure import RunMetrics, make_config, run_workload
from .reporting import render_markdown, render_result, render_table

__all__ = [
    "Expectation",
    "Experiment",
    "ExperimentResult",
    "Row",
    "RunMetrics",
    "all_experiment_ids",
    "get_experiment",
    "make_config",
    "render_markdown",
    "render_result",
    "render_table",
    "run_workload",
]
