"""Figure 5 — bare-metal Dhrystone, accumulated MIPS.

Sweeps core count x quantum x parallelization on both VPs and reports
accumulated MIPS (total retired instructions / modeled wall-clock).

Paper claims checked:

* single-core AoA reaches ~10,000 MIPS, about 10x AVP64;
* parallel execution roughly doubles/quadruples dual/quad-core MIPS;
* small quanta reduce AoA performance (EL-switch overhead);
* octa-core scaling dips (only 6 host performance cores);
* sequential multicore stays near single-core MIPS.
"""

from __future__ import annotations

from typing import List

from ..workloads.dhrystone import DhrystoneParams, dhrystone_software
from .experiment import Expectation, Experiment, Row, register, value_of
from .measure import make_config, run_workload

CORE_COUNTS = (1, 2, 4, 8)
QUANTA_US = (100.0, 1000.0, 5000.0)
PLATFORMS = ("aoa", "avp64")

#: Dhrystone iterations at scale=1.0 (paper-sized run: ~1.7e9 inst/core).
FULL_ITERATIONS = 5_000_000


@register
class Fig5Dhrystone(Experiment):
    experiment_id = "fig5"
    title = "Bare-metal Dhrystone accumulated MIPS (Fig. 5)"
    paper_reference = "Section V-A, Figure 5"

    def collect(self, scale: float) -> List[Row]:
        iterations = max(10_000, int(FULL_ITERATIONS * scale))
        rows: List[Row] = []
        for platform in PLATFORMS:
            for cores in CORE_COUNTS:
                software = dhrystone_software(cores, DhrystoneParams(iterations))
                for quantum_us in QUANTA_US:
                    for parallel in (False, True):
                        config = make_config(cores, quantum_us, parallel)
                        metrics = run_workload(platform, config, software)
                        rows.append(Row(
                            keys={"platform": platform, "cores": cores,
                                  "quantum_us": quantum_us, "parallel": parallel},
                            values={"mips": metrics.mips,
                                    "wall_s": metrics.wall_seconds,
                                    "instructions": metrics.instructions},
                        ))
        return rows

    def expectations(self, scale: float = 1.0) -> List[Expectation]:
        def aoa1(rows):
            return value_of(rows, "mips", platform="aoa", cores=1,
                            quantum_us=1000.0, parallel=False)

        def avp1(rows):
            return value_of(rows, "mips", platform="avp64", cores=1,
                            quantum_us=1000.0, parallel=False)

        def aoa(rows, cores, parallel=True, quantum=1000.0):
            return value_of(rows, "mips", platform="aoa", cores=cores,
                            quantum_us=quantum, parallel=parallel)

        return [
            Expectation(
                "single-core AoA reaches ~10,000 MIPS",
                "~10,000 MIPS",
                lambda rows: 7_000 <= aoa1(rows) <= 13_000,
                lambda rows: f"{aoa1(rows):.0f} MIPS",
            ),
            Expectation(
                "AoA is ~10x AVP64 on a single core",
                "~10x",
                lambda rows: 7 <= aoa1(rows) / avp1(rows) <= 14,
                lambda rows: f"{aoa1(rows) / avp1(rows):.1f}x",
            ),
            Expectation(
                "dual-core parallel MIPS ~2x single-core",
                "performance effectively doubles",
                lambda rows: 1.7 <= aoa(rows, 2) / aoa1(rows) <= 2.3,
                lambda rows: f"{aoa(rows, 2) / aoa1(rows):.2f}x",
            ),
            Expectation(
                "quad-core parallel MIPS ~4x single-core",
                "optimal speedup for quad-core",
                lambda rows: 3.3 <= aoa(rows, 4) / aoa1(rows) <= 4.6,
                lambda rows: f"{aoa(rows, 4) / aoa1(rows):.2f}x",
            ),
            Expectation(
                "octa-core scaling dips below 8x (6 P-cores)",
                "limited performance cores reduce achievable speedups",
                lambda rows: aoa(rows, 8) / aoa1(rows) < 7.0,
                lambda rows: f"{aoa(rows, 8) / aoa1(rows):.2f}x",
            ),
            Expectation(
                "smaller quantum reduces AoA MIPS",
                "smaller quantum values lead to decreased AoA performance",
                lambda rows: aoa(rows, 4, quantum=100.0) < aoa(rows, 4, quantum=1000.0),
                lambda rows: (f"{aoa(rows, 4, quantum=100.0):.0f} vs "
                              f"{aoa(rows, 4, quantum=1000.0):.0f} MIPS"),
            ),
            Expectation(
                "sequential multicore stays near single-core MIPS",
                "parallelization does not help a single compute thread",
                lambda rows: (0.7 <= aoa(rows, 8, parallel=False) / aoa1(rows) <= 1.3),
                lambda rows: f"{aoa(rows, 8, parallel=False) / aoa1(rows):.2f}x",
            ),
        ]
