"""Figure 7 — benchmark speedup S of AoA over AVP64.

1 ms quantum, parallel execution enabled, 1/2/4/8 cores.  Both VPs run the
identical workload; speedup is the ratio of modeled wall-clock times
(AVP64 / AoA).  The AoA VP runs with WFI annotations (the paper's §V-C
setup notes annotation is essential for single-threaded workloads on
multicore VPs).

Workloads: bare-metal Dhrystone, the Linux boot, STREAM (10K/100K/1M),
MiBench S/L variants, and the NAS Parallel Benchmarks.

Paper claims checked:

* MiBench speedups range from ~8x (basicmath L) to ~165x (susan S);
* small MiBench variants beat large ones (translation amortization);
* NPB minimum speedup ~1.8x (FT); EP (compute-bound) clearly higher;
* Linux-boot speedup shrinks with core count (WFI trap cost on AoA);
* Dhrystone speedup dips at 8 cores (host P-core limit).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..vp.linux import LinuxBootParams, linux_boot_software
from ..vp.software import GuestSoftware
from ..workloads.dhrystone import DhrystoneParams, dhrystone_software
from ..workloads.mibench import PROFILES as MIBENCH_PROFILES
from ..workloads.mibench import mibench_software
from ..workloads.npb import PROFILES as NPB_PROFILES
from ..workloads.npb import npb_software
from ..workloads.stream import StreamParams, stream_software
from .experiment import Expectation, Experiment, Row, register, value_of
from .measure import make_config, run_workload

CORE_COUNTS = (1, 2, 4, 8)
QUANTUM_US = 1000.0

#: STREAM array sizes of Fig. 7.
STREAM_SIZES = (10_000, 100_000, 1_000_000)


def _scaled(value: int, scale: float, floor: int = 100_000) -> int:
    return max(floor, int(value * scale))


def _workload_matrix(scale: float) -> List[Tuple[str, Callable[[int], GuestSoftware], dict]]:
    """(label, software factory per core count, run options)."""
    matrix: List[Tuple[str, Callable[[int], GuestSoftware], dict]] = []
    matrix.append((
        "dhrystone",
        lambda cores: dhrystone_software(
            cores, DhrystoneParams(iterations=_scaled(5_000_000, scale, 20_000))),
        {},
    ))
    boot_params = LinuxBootParams().scaled(scale)
    matrix.append((
        "linux-boot",
        lambda cores: linux_boot_software(cores, boot_params),
        {"stop_on_boot": True, "max_sim_seconds": 3000.0},
    ))
    for elements in STREAM_SIZES:
        matrix.append((
            f"stream-{elements // 1000}K" if elements < 1_000_000 else "stream-1M",
            lambda cores, elements=elements: stream_software(
                cores, StreamParams(array_elements=elements,
                                    ntimes=max(2, int(10 * scale)))),
            {},
        ))
    for benchmark in MIBENCH_PROFILES:
        for variant in ("small", "large"):
            matrix.append((
                f"{benchmark}-{variant[0].upper()}",
                lambda cores, b=benchmark, v=variant: _scaled_mibench(b, v, cores, scale),
                {},
            ))
    for benchmark in NPB_PROFILES:
        matrix.append((
            f"npb-{benchmark}",
            lambda cores, b=benchmark: _scaled_npb(b, cores, scale),
            {},
        ))
    return matrix


def _scaled_mibench(benchmark: str, variant: str, cores: int, scale: float) -> GuestSoftware:
    software = mibench_software(benchmark, variant, cores)
    if scale >= 1.0:
        return software
    # Rebuild with scaled instruction counts while keeping the static-block
    # footprint (translation cost must not scale — it is the phenomenon).
    from ..iss.phase import Compute
    from ..workloads.base import WorkloadInfo, user_space_software
    profile = MIBENCH_PROFILES[benchmark]
    total = _scaled(profile.instructions(variant), scale)

    def main_program(ctx):
        remaining = total
        while remaining > 0:
            take = min(10_000_000, remaining)
            yield Compute(take, key=f"mibench_{benchmark}",
                          static_blocks=profile.static_blocks,
                          avg_block_len=profile.avg_block_len,
                          mem_fraction=profile.mem_fraction)
            remaining -= take

    info = WorkloadInfo(f"{benchmark}-{variant[0].upper()}-{cores}c", "userspace",
                        total, False)
    return user_space_software(info.name, cores, main_program, info=info)


def _scaled_npb(benchmark: str, cores: int, scale: float) -> GuestSoftware:
    if scale >= 1.0:
        return npb_software(benchmark, cores)
    from dataclasses import replace

    from ..workloads import npb as npb_module
    profile = NPB_PROFILES[benchmark]
    scaled_profile = replace(
        profile,
        iterations=max(2, int(profile.iterations * max(scale, 0.05))),
        work_per_segment=_scaled(profile.work_per_segment, scale, 10_000),
    )
    original = npb_module.PROFILES[benchmark]
    npb_module.PROFILES[benchmark] = scaled_profile
    try:
        return npb_software(benchmark, cores)
    finally:
        npb_module.PROFILES[benchmark] = original


@register
class Fig7Speedup(Experiment):
    experiment_id = "fig7"
    title = "Benchmark speedup of AoA vs AVP64, 1 ms quantum, parallel (Fig. 7)"
    paper_reference = "Section V-C, Figure 7"

    core_counts = CORE_COUNTS

    def collect(self, scale: float) -> List[Row]:
        rows: List[Row] = []
        for label, factory, options in _workload_matrix(scale):
            for cores in self.core_counts:
                software = factory(cores)
                aoa_config = make_config(cores, QUANTUM_US, True, wfi_annotations=True)
                avp_config = make_config(cores, QUANTUM_US, True, wfi_annotations=False)
                aoa = run_workload("aoa", aoa_config, software, **options)
                avp = run_workload("avp64", avp_config, software, **options)
                speedup = avp.wall_seconds / aoa.wall_seconds if aoa.wall_seconds else 0.0
                rows.append(Row(
                    keys={"workload": label, "cores": cores},
                    values={"speedup": speedup,
                            "aoa_wall_s": aoa.wall_seconds,
                            "avp64_wall_s": avp.wall_seconds},
                ))
        return rows

    def expectations(self, scale: float = 1.0) -> List[Expectation]:
        def speedup(rows, workload, cores=1):
            return value_of(rows, "speedup", workload=workload, cores=cores)

        return [
            Expectation(
                "susan S reaches very high speedup (translation-bound)",
                "~165x for Susan S on single-core VPs",
                lambda rows: speedup(rows, "susan_s-S") > 60,
                lambda rows: f"{speedup(rows, 'susan_s-S'):.0f}x",
            ),
            Expectation(
                "basicmath L speedup is modest (dispatch-bound)",
                "~8x for Basicmath L",
                lambda rows: 5 <= speedup(rows, "basicmath-L") <= 14,
                lambda rows: f"{speedup(rows, 'basicmath-L'):.1f}x",
            ),
            Expectation(
                "every MiBench small variant beats its large variant",
                "smaller variants achieve higher speedups",
                lambda rows: all(
                    speedup(rows, f"{b}-S") > speedup(rows, f"{b}-L")
                    for b in ("basicmath", "bitcount", "qsort", "susan_s")
                ),
                lambda rows: ", ".join(
                    f"{b}: {speedup(rows, f'{b}-S'):.0f}x/"
                    f"{speedup(rows, f'{b}-L'):.0f}x"
                    for b in ("basicmath", "susan_s")
                ),
            ),
            Expectation(
                "NPB stays above ~1.8x, FT is the weakest",
                "minimum speedup of 1.8x for the FT benchmark",
                lambda rows: (
                    all(speedup(rows, f"npb-{b}", 8) >= 1.3 for b in NPB_PROFILES)
                    and speedup(rows, "npb-ft", 8)
                    == min(speedup(rows, f"npb-{b}", 8) for b in NPB_PROFILES)
                ),
                lambda rows: ", ".join(
                    f"{b}: {speedup(rows, f'npb-{b}', 8):.1f}x" for b in NPB_PROFILES
                ),
            ),
            Expectation(
                "NPB EP (compute-bound) beats the communication-heavy kernels",
                "CG, FT, MG cause more overhead than the other workloads",
                lambda rows: speedup(rows, "npb-ep", 8) > 1.5 * speedup(rows, "npb-ft", 8),
                lambda rows: (f"ep {speedup(rows, 'npb-ep', 8):.1f}x vs "
                              f"ft {speedup(rows, 'npb-ft', 8):.1f}x"),
            ),
            Expectation(
                "Linux-boot speedup shrinks as core count grows",
                "increased core counts reduce the speedup (WFI trap cost)",
                lambda rows: (speedup(rows, "linux-boot", 8)
                              < speedup(rows, "linux-boot", 1)),
                lambda rows: (f"1c: {speedup(rows, 'linux-boot', 1):.1f}x, "
                              f"8c: {speedup(rows, 'linux-boot', 8):.1f}x"),
            ),
            Expectation(
                "Dhrystone speedup dips at eight cores",
                "dip in speedup for eight simulated cores",
                lambda rows: (speedup(rows, "dhrystone", 8)
                              < 0.85 * speedup(rows, "dhrystone", 4)),
                lambda rows: (f"4c: {speedup(rows, 'dhrystone', 4):.1f}x, "
                              f"8c: {speedup(rows, 'dhrystone', 8):.1f}x"),
            ),
            Expectation(
                "STREAM speedups exceed the Dhrystone baseline",
                "software MMU translations incur significant ISS overhead",
                lambda rows: all(
                    speedup(rows, f"stream-{s}") > speedup(rows, "dhrystone")
                    for s in ("10K", "100K", "1M")
                ),
                lambda rows: ", ".join(
                    f"{s}: {speedup(rows, f'stream-{s}'):.1f}x"
                    for s in ("10K", "100K", "1M")
                ),
            ),
        ]
