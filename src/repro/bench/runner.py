"""Command-line entry point: ``repro-bench`` / ``python -m repro.bench``.

Runs the figure experiments and ablations, prints each result table with
its paper-claim checks, and can emit markdown for EXPERIMENTS.md or one
JSON document for machines (``--json``).  ``--ledger-dir`` folds every
experiment's kernel dispatch stream into a :mod:`repro.divergence` window
ledger and writes ``<experiment>.ledger.json`` sidecars — compare two
bench runs with ``python -m repro.divergence compare``.  ``--obs-dir``
attaches the :mod:`repro.obs` attribution engine and writes per-experiment
phase-attribution reports plus window snapshot streams; ``--history``
appends the run's summary to a ``BENCH_obs.json`` trend file and
``--history-check`` ratio-gates MIPS against the baseline median.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
from typing import List

from ..host.wallclock import elapsed_since, wall_clock
from . import ablations, fig5, fig6, fig7  # noqa: F401  (register experiments)
from .experiment import all_experiment_ids, get_experiment
from .reporting import render_markdown, render_result, result_json


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the paper's figures on the simulated platforms.",
    )
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"experiment ids (default: all of {all_experiment_ids()})")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="workload scale factor; 1.0 = paper-sized runs "
                             "(default 0.02 for a fast pass)")
    parser.add_argument("--markdown", action="store_true",
                        help="emit markdown sections instead of tables")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON document (rows, checks, and the "
                             "determinism-ledger root digest when "
                             "--ledger-dir is active) instead of tables")
    parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="collect repro.telemetry metrics for every "
                             "platform each experiment builds and write a "
                             "<experiment>.metrics.json sidecar into DIR")
    parser.add_argument("--profile-dir", default=None, metavar="DIR",
                        help="attach the repro.flight recorder + guest "
                             "profiler to every platform each experiment "
                             "builds and write <experiment>.journal.jsonl, "
                             ".profile.folded and .profile.json sidecars "
                             "into DIR")
    parser.add_argument("--profile-interval", type=int, default=10_000,
                        metavar="CYCLES",
                        help="guest profiler sample interval in modeled "
                             "cycles (default 10000)")
    parser.add_argument("--ledger-dir", default=None, metavar="DIR",
                        help="fold each experiment's dispatch stream into a "
                             "repro.divergence window ledger and write a "
                             "<experiment>.ledger.json sidecar into DIR")
    parser.add_argument("--ledger-window-us", type=float, default=1000.0,
                        metavar="US",
                        help="ledger window in simulated microseconds "
                             "(default 1000)")
    parser.add_argument("--obs-dir", default=None, metavar="DIR",
                        help="attach the repro.obs attribution engine to "
                             "every platform each experiment builds and "
                             "write <experiment>.obs.json (per-platform "
                             "phase attribution) and <experiment>.obs.jsonl "
                             "(window snapshot stream) sidecars into DIR")
    parser.add_argument("--history", default=None, metavar="FILE",
                        help="append this run's attribution+throughput "
                             "summary to a repro.obs bench-history file "
                             "(e.g. BENCH_obs.json) and print the trend "
                             "report")
    parser.add_argument("--history-check", action="store_true",
                        help="with --history: exit non-zero if the new "
                             "entry's MIPS regresses past the ratio gate")
    parser.add_argument("--history-tolerance", type=float, default=None,
                        metavar="FRACTION",
                        help="allowed fractional MIPS regression for "
                             "--history-check (default 0.25)")
    parser.add_argument("--exec", dest="exec_backend", default=None,
                        metavar="BACKEND",
                        help="quantum executor backend for every platform "
                             "built by the experiments (serial, threads; "
                             "default: legacy inline loop / REPRO_EXEC)")
    parser.add_argument("--snapshot-at", type=float, default=None, metavar="MS",
                        help="boot the Linux workload to MS simulated "
                             "milliseconds, capture a repro.snapshot and "
                             "write it to --snapshot-out (skips the normal "
                             "experiment run)")
    parser.add_argument("--snapshot-out", default=None, metavar="FILE",
                        help="output .rsnap path for --snapshot-at")
    parser.add_argument("--snapshot-kind", default="aoa",
                        choices=("aoa", "avp64"),
                        help="platform kind for --snapshot-at (default aoa)")
    parser.add_argument("--snapshot-cores", type=int, default=4, metavar="N",
                        help="core count for --snapshot-at (default 4)")
    parser.add_argument("--snapshot-quantum-us", type=float, default=100.0,
                        metavar="US",
                        help="quantum for --snapshot-at (default 100)")
    parser.add_argument("--snapshot-parallel", action="store_true",
                        help="use the parallel quantum scheme for "
                             "--snapshot-at")
    parser.add_argument("--from-snapshot", default=None, metavar="FILE",
                        help="resume a .rsnap written by --snapshot-at: fork "
                             "one copy-on-write child per --matrix entry and "
                             "run each to its total simulated duration "
                             "(skips the normal experiment run)")
    parser.add_argument("--matrix", default=None, metavar="MS,MS,...",
                        help="comma-separated total durations in simulated "
                             "ms for --from-snapshot (each must lie beyond "
                             "the snapshot point)")
    parser.add_argument("--verify-cold", action="store_true",
                        help="with --from-snapshot: also run every matrix "
                             "entry cold from construction and require the "
                             "DET001 dispatch digests to match bit-for-bit")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in all_experiment_ids():
            experiment = get_experiment(experiment_id)
            print(f"{experiment_id:20s} {experiment.title}")
        return 0
    if args.markdown and args.json:
        parser.error("--markdown and --json are mutually exclusive")

    if args.history_check and args.history is None:
        parser.error("--history-check requires --history")
    if args.exec_backend is not None:
        # Experiments build their own VpConfigs; the env var is the one
        # channel that reaches every platform they construct.
        from ..vp.config import normalize_exec_backend
        normalize_exec_backend(args.exec_backend)   # fail fast on typos
        os.environ["REPRO_EXEC"] = args.exec_backend
    for directory in (args.telemetry_dir, args.profile_dir, args.ledger_dir,
                      args.obs_dir):
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    if args.snapshot_at is not None or args.from_snapshot is not None:
        from .snapshot_cli import run_matrix, snapshot_boot
        if args.snapshot_at is not None and args.from_snapshot is not None:
            parser.error("--snapshot-at and --from-snapshot are mutually "
                         "exclusive")
        if args.snapshot_at is not None:
            if args.snapshot_out is None:
                parser.error("--snapshot-at requires --snapshot-out")
            return snapshot_boot(args.snapshot_out, args.snapshot_at,
                                 args.snapshot_kind, args.snapshot_cores,
                                 args.scale, args.snapshot_quantum_us,
                                 args.snapshot_parallel, args.json)
        if args.matrix is None:
            parser.error("--from-snapshot requires --matrix")
        matrix = [float(entry) for entry in args.matrix.split(",") if entry]
        if len(matrix) < 1:
            parser.error("--matrix needs at least one duration")
        failures = run_matrix(args.from_snapshot, matrix, args.verify_cold,
                              args.json)
        return 1 if failures else 0

    #: attribution summaries are collected whenever either obs flag is on
    want_obs = args.obs_dir is not None or args.history is not None
    history_experiments = {}
    ids = args.experiments or all_experiment_ids()
    failures = 0
    json_results = []
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        started = wall_clock()
        if args.telemetry_dir is not None:
            from ..telemetry import collecting, write_metrics_json
            scope = collecting()
        else:
            scope = contextlib.nullcontext()
        if args.profile_dir is not None:
            from ..flight import recording
            flight_scope = recording(profile_interval=args.profile_interval)
        else:
            flight_scope = contextlib.nullcontext()
        if args.ledger_dir is not None:
            from ..divergence import WindowLedger
            ledger_scope = WindowLedger(
                int(args.ledger_window_us * 1_000_000),
                meta={"experiment": experiment_id, "scale": args.scale})
        else:
            ledger_scope = contextlib.nullcontext()
        if want_obs:
            from ..obs import JsonlSink, observing
            sinks = []
            if args.obs_dir is not None:
                sinks.append(JsonlSink(os.path.join(
                    args.obs_dir, f"{experiment_id}.obs.jsonl")))
            obs_scope = observing(sinks)
        else:
            obs_scope = contextlib.nullcontext()
        with scope as telemetry, flight_scope as flight, \
                ledger_scope as ledger, obs_scope as obs:
            result = experiment.run(scale=args.scale)
            if obs is not None:
                # Summaries must be taken inside the scope: exit detaches
                # and drops per-platform state.
                obs.finalize()
                obs_summaries = [summary.to_json() for summary in
                                 obs.summaries().values()]
                obs_stream_stats = obs.stream_stats()
        extra = {}
        if args.ledger_dir is not None:
            run_ledger = ledger.ledger()
            sidecar = os.path.join(args.ledger_dir,
                                   f"{experiment_id}.ledger.json")
            run_ledger.save(sidecar)
            extra["root_digest"] = run_ledger.root_digest
            extra["ledger"] = sidecar
            if not args.json:
                print(f"ledger sidecar: {sidecar} "
                      f"({len(run_ledger.windows)} windows, "
                      f"root {run_ledger.root_digest[:16]}…)")
        if args.telemetry_dir is not None:
            sidecar = os.path.join(args.telemetry_dir,
                                   f"{experiment_id}.metrics.json")
            write_metrics_json(telemetry.registry, sidecar)
            extra["metrics"] = sidecar
            if not args.json:
                print(f"telemetry sidecar: {sidecar} "
                      f"({len(telemetry.registry)} series)")
        if want_obs:
            inconsistent = sum(1 for summary in obs_summaries
                               if not summary.get("consistent"))
            if args.obs_dir is not None:
                report = {
                    "schema": "repro.obs.report/1",
                    "experiment": experiment_id,
                    "scale": args.scale,
                    "summaries": obs_summaries,
                    "stream": obs_stream_stats,
                }
                sidecar = os.path.join(args.obs_dir,
                                       f"{experiment_id}.obs.json")
                with open(sidecar, "w", encoding="utf-8") as handle:
                    json.dump(report, handle, indent=2, sort_keys=True)
                    handle.write("\n")
                extra["obs"] = sidecar
                if not args.json:
                    print(f"obs sidecar: {sidecar} "
                          f"({len(obs_summaries)} platforms, "
                          f"{inconsistent} inconsistent)")
            if inconsistent:
                failures += inconsistent
            history_experiments[experiment_id] = obs_summaries
        if args.profile_dir is not None:
            journal = os.path.join(args.profile_dir,
                                   f"{experiment_id}.journal.jsonl")
            events = flight.write_journal(journal)
            extra["journal"] = journal
            message = f"flight sidecars: {journal} ({events} events)"
            if flight.profiler is not None:
                folded = os.path.join(args.profile_dir,
                                      f"{experiment_id}.profile.folded")
                stacks = flight.profiler.write_folded(folded)
                flight.profiler.write_json(os.path.join(
                    args.profile_dir, f"{experiment_id}.profile.json"))
                message += f", {folded} ({stacks} stacks)"
            if not args.json:
                print(message)
        elapsed = elapsed_since(started)
        if args.json:
            json_results.append(result_json(result, wall_s=round(elapsed, 3),
                                            **extra))
        elif args.markdown:
            print(render_markdown(result))
        else:
            print(render_result(result))
            print(f"(ran in {elapsed:.1f} s at scale {args.scale})")
            print()
        failures += sum(1 for check in result.checks if not check["passed"])
    if args.history is not None:
        from ..obs.trend import (DEFAULT_TOLERANCE, append_entry,
                                 check_history, make_entry, trend_report)
        tolerance = (args.history_tolerance if args.history_tolerance
                     is not None else DEFAULT_TOLERANCE)
        entry = make_entry(history_experiments,
                           label=f"scale={args.scale}")
        history = append_entry(args.history, entry)
        if not args.json:
            print(trend_report(history, tolerance=tolerance), end="")
        if args.history_check:
            gate_failures = check_history(history, tolerance=tolerance)
            for failure in gate_failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            failures += len(gate_failures)
    if args.json:
        print(json.dumps({"scale": args.scale, "results": json_results,
                          "failures": failures}, indent=2, sort_keys=True))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
