"""Figure 6 — Buildroot-Linux boot durations on the AoA VP.

Figure 6a: boot wall-clock *without* WFI annotations (KVM blocks idle
vcpus in kernel).  Figure 6b: the same sweep *with* WFI annotations.

Paper claims checked:

* single-core boot ~0.6 s;
* without annotations, sequential multicore boots blow up (octa-core up
  to ~40 s) and larger quanta make it worse;
* parallelization mitigates the idle-loop cost;
* annotations bring dual/quad boots under ~1 s;
* octa-core annotation speedup ranges from ~1.78x (100 us parallel) to
  ~11.5x (5 ms sequential).
"""

from __future__ import annotations

from typing import List

from ..vp.linux import LinuxBootParams, linux_boot_software
from .experiment import Expectation, Experiment, Row, register, value_of
from .measure import make_config, run_workload

CORE_COUNTS = (1, 2, 4, 8)
QUANTA_US = (100.0, 1000.0, 5000.0)


@register
class Fig6LinuxBoot(Experiment):
    experiment_id = "fig6"
    title = "Buildroot Linux boot durations, AoA (Fig. 6a/6b)"
    paper_reference = "Section V-B, Figure 6"

    def collect(self, scale: float) -> List[Row]:
        params = LinuxBootParams().scaled(scale)
        rows: List[Row] = []
        for cores in CORE_COUNTS:
            software = linux_boot_software(cores, params)
            for quantum_us in QUANTA_US:
                for parallel in (False, True):
                    for annotations in (False, True):
                        config = make_config(cores, quantum_us, parallel,
                                             wfi_annotations=annotations)
                        metrics = run_workload("aoa", config, software,
                                               stop_on_boot=True,
                                               max_sim_seconds=3_000.0)
                        rows.append(Row(
                            keys={"cores": cores, "quantum_us": quantum_us,
                                  "parallel": parallel, "annotations": annotations},
                            values={"boot_wall_s": metrics.wall_seconds,
                                    "boot_sim_s": metrics.sim_seconds,
                                    "instructions": metrics.instructions},
                        ))
        return rows

    def expectations(self, scale: float = 1.0) -> List[Expectation]:
        def boot(rows, cores, quantum=1000.0, parallel=False, annotations=False):
            return value_of(rows, "boot_wall_s", cores=cores, quantum_us=quantum,
                            parallel=parallel, annotations=annotations)

        def octa_speedup(rows, quantum, parallel):
            return (boot(rows, 8, quantum, parallel, False)
                    / boot(rows, 8, quantum, parallel, True))

        # Scale-sensitive absolute claims hold at scale=1.0; the relative
        # claims below hold at any scale.
        return [
            Expectation(
                "multicore sequential boot far slower than single-core (no ann.)",
                "octa-core boot up to 40 s vs 0.6 s single-core",
                lambda rows: boot(rows, 8, 5000.0) / boot(rows, 1, 5000.0) > 10,
                lambda rows: (f"octa {boot(rows, 8, 5000.0):.2f}s vs "
                              f"single {boot(rows, 1, 5000.0):.2f}s"),
            ),
            Expectation(
                "larger quantum slows the unannotated multicore boot",
                "for larger quantum values ... increased runtime",
                lambda rows: boot(rows, 8, 5000.0) > boot(rows, 8, 100.0),
                lambda rows: (f"5ms: {boot(rows, 8, 5000.0):.2f}s, "
                              f"100us: {boot(rows, 8, 100.0):.2f}s"),
            ),
            Expectation(
                "parallelization reduces unannotated multicore boot time",
                "idling cores simulated in parallel reduce wall-clock time",
                lambda rows: (boot(rows, 8, 1000.0, parallel=True)
                              < 0.6 * boot(rows, 8, 1000.0, parallel=False)),
                lambda rows: (f"par {boot(rows, 8, 1000.0, True):.2f}s vs "
                              f"seq {boot(rows, 8, 1000.0, False):.2f}s"),
            ),
            Expectation(
                "WFI annotations speed up every multicore configuration",
                "best results when idle loops are annotated",
                lambda rows: all(
                    boot(rows, c, q, p, True) < boot(rows, c, q, p, False)
                    for c in (2, 4, 8) for q in QUANTA_US for p in (False, True)
                ),
                lambda rows: "annotated < unannotated for all multicore configs",
            ),
            Expectation(
                "octa-core annotation speedup largest for 5 ms sequential",
                "1.78x (100 us parallel) up to 11.5x (5 ms sequential)",
                lambda rows: (octa_speedup(rows, 5000.0, False)
                              > octa_speedup(rows, 100.0, True) >= 1.2),
                lambda rows: (f"5ms seq: {octa_speedup(rows, 5000.0, False):.1f}x, "
                              f"100us par: {octa_speedup(rows, 100.0, True):.2f}x"),
            ),
            Expectation(
                "annotated dual/quad boots stay close to the single-core boot",
                "boot under ~1 s for dual and quad-core setups",
                # At reduced scale the (unscaled) handshake count dominates
                # the (scaled) boot work, so allow a looser multiple there.
                lambda rows: all(
                    boot(rows, c, 1000.0, True, True)
                    < (2.5 if scale >= 0.5 else 12.0) * boot(rows, 1, 1000.0, True, True)
                    for c in (2, 4)
                ),
                lambda rows: ", ".join(
                    f"{c}c: {boot(rows, c, 1000.0, True, True):.3f}s" for c in (1, 2, 4)
                ),
            ),
        ]
