"""``repro-bench`` snapshot paths: warm-boot capture and matrix resume.

Two modes, both exercised by CI (see .github/workflows):

* ``--snapshot-at MS --snapshot-out FILE`` boots the Linux workload with a
  :class:`repro.snapshot.TraceRecorder` attached, captures the platform at
  the requested simulated time, and saves a standalone ``.rsnap`` container.
  The scenario metadata (workload, cores, scale) travels in the manifest so
  the resume side can rebuild the identical guest software.

* ``--from-snapshot FILE --matrix D1,D2,...`` loads the container once,
  forks one copy-on-write child per matrix entry, restores each into a
  fresh platform and runs it to the entry's total simulated duration.  Each
  experiment reports a DET001 dispatch digest covering the replayed boot
  prefix plus the resumed run — with ``--verify-cold`` the same duration is
  also run cold from construction and the two digests must match
  bit-for-bit, which is the snapshot subsystem's correctness gate.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..analysis.determinism import KernelTrace
from ..systemc.kernel import Kernel
from ..systemc.time import SimTime
from ..vp.config import VpConfig
from ..vp.platform import build_platform

#: scenario-manifest schema for snapshots produced by this CLI
SCENARIO_WORKLOAD = "linux_boot"


def _software(scenario: dict):
    from ..vp.linux import LinuxBootParams, linux_boot_software
    if scenario.get("workload") != SCENARIO_WORKLOAD:
        from ..snapshot import SnapshotError
        raise SnapshotError(
            f"snapshot scenario {scenario.get('workload')!r} is not a "
            f"{SCENARIO_WORKLOAD!r} capture from repro-bench")
    return linux_boot_software(
        scenario["cores"], LinuxBootParams().scaled(scenario["scale"]))


def _config(cores: int, quantum_us: float, parallel: bool) -> VpConfig:
    return VpConfig(num_cores=cores, quantum=SimTime.us(quantum_us),
                    parallel=parallel, wfi_annotations=True)


def snapshot_boot(out_path: str, at_ms: float, kind: str, cores: int,
                  scale: float, quantum_us: float, parallel: bool,
                  emit_json: bool) -> int:
    """Boot the Linux workload to ``at_ms`` simulated ms and save a snapshot."""
    from ..snapshot import TraceRecorder, capture_platform
    scenario = {"workload": SCENARIO_WORKLOAD, "cores": cores, "scale": scale,
                "quantum_us": quantum_us}
    software = _software(scenario)
    vp = build_platform(kind, _config(cores, quantum_us, parallel), software)
    try:
        with TraceRecorder() as recorder:
            vp.run(SimTime.ms(at_ms))
        snapshot = capture_platform(vp, trace=recorder.entries,
                                    scenario=scenario)
    finally:
        if vp.executor is not None:
            vp.executor.shutdown()
    written = snapshot.save(out_path)
    if emit_json:
        print(json.dumps({
            "snapshot": out_path,
            "snapshot_id": snapshot.snapshot_id,
            "sim_time_ps": snapshot.sim_time_ps,
            "bytes": written,
            "pages": len(snapshot.manifest["ram"]["pages"]),
        }, indent=2, sort_keys=True))
    else:
        print(f"snapshot: {out_path} ({written} bytes, "
              f"id {snapshot.snapshot_id[:16]}…, "
              f"@ {snapshot.sim_time_ps // 1_000_000} us sim time)")
    return 0


def _digest_run(action) -> KernelTrace:
    """Run ``action`` with a DIGEST-tier recorder attached; return the trace."""
    trace = KernelTrace()
    handle = Kernel.add_trace_hook(trace.record, Kernel.TRACE_PRIORITY_DIGEST)
    try:
        action()
    finally:
        Kernel.remove_trace_hook(handle)
    return trace


def run_matrix(snapshot_path: str, matrix: List[float], verify_cold: bool,
               emit_json: bool) -> int:
    """Fork the snapshot into one child per matrix entry and resume each.

    ``matrix`` entries are *total* simulated durations in ms (from cold
    boot, not from the snapshot point) so cold-run digests are directly
    comparable.  Returns the number of failed experiments.
    """
    from ..snapshot import Snapshot, SnapshotError
    snapshot = Snapshot.load(snapshot_path)
    if snapshot.partial:
        raise SnapshotError(
            f"{snapshot_path} is a partial (flight-bundle) snapshot and "
            "cannot seed a bench matrix")
    scenario = snapshot.manifest.get("scenario", {})
    snap_ms = snapshot.sim_time_ps / 1_000_000_000
    for duration_ms in matrix:
        if duration_ms * 1_000_000_000 <= snapshot.sim_time_ps:
            raise SnapshotError(
                f"matrix entry {duration_ms}ms is not beyond the snapshot "
                f"point ({snap_ms:.3f}ms)")

    children = snapshot.fork(len(matrix))
    results = []
    failures = 0
    for duration_ms, child in zip(matrix, children):
        software = _software(scenario)
        remaining = SimTime.ms(duration_ms) - SimTime(child.sim_time_ps)
        warm = _digest_run(lambda: _resume(child, software, remaining))
        row = {
            "duration_ms": duration_ms,
            "digest": warm.digest(),
            "dispatches": len(warm),
        }
        if verify_cold:
            cold = _digest_run(
                lambda: _cold_run(snapshot, scenario, duration_ms))
            row["cold_digest"] = cold.digest()
            row["match"] = cold.digest() == warm.digest()
            if not row["match"]:
                failures += 1
        results.append(row)
    if emit_json:
        print(json.dumps({
            "snapshot": snapshot_path,
            "snapshot_id": snapshot.snapshot_id,
            "snapshot_ms": snap_ms,
            "results": results,
            "failures": failures,
        }, indent=2, sort_keys=True))
    else:
        print(f"snapshot {snapshot_path} (id {snapshot.snapshot_id[:16]}…, "
              f"captured @ {snap_ms:.3f} ms)")
        for row in results:
            line = (f"  {row['duration_ms']:8.3f} ms  "
                    f"digest {row['digest'][:16]}…  "
                    f"{row['dispatches']} dispatches")
            if verify_cold:
                line += "  cold: " + ("MATCH" if row["match"] else "MISMATCH")
            print(line)
        if failures:
            print(f"{failures} experiment(s) diverged from cold boot")
    return failures


def _resume(child, software, remaining: SimTime) -> None:
    vp = child.restore(software)
    try:
        vp.run(remaining)
    finally:
        if vp.executor is not None:
            vp.executor.shutdown()


def _cold_run(snapshot, scenario: dict, duration_ms: float) -> None:
    from ..snapshot import config_from_manifest
    config = config_from_manifest(snapshot.manifest["config"])
    vp = build_platform(snapshot.kind, config, _software(scenario))
    try:
        vp.run(SimTime.ms(duration_ms))
    finally:
        if vp.executor is not None:
            vp.executor.shutdown()
