"""Experiment framework: registry, result structures, expectations.

Every figure of the paper's evaluation is an :class:`Experiment` that can
be run at ``full`` scale (paper-sized instruction counts) or ``quick``
scale (counts shrunk so the whole suite runs in seconds — the *shapes*
survive scaling because every mechanism cost is modeled per event).

Each experiment also declares machine-checkable :class:`Expectation`
predicates taken from the paper's text; ``check()`` evaluates them so both
the test suite and EXPERIMENTS.md report paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class Row:
    """One measurement row of a figure (generic across experiments)."""

    keys: Dict[str, object]
    values: Dict[str, float]

    def get(self, name: str):
        if name in self.keys:
            return self.keys[name]
        return self.values[name]


@dataclass
class Expectation:
    """A claim from the paper, evaluated against the measured rows."""

    description: str
    paper_value: str
    predicate: Callable[[List[Row]], bool]
    measured: Callable[[List[Row]], str]


@dataclass
class ExperimentResult:
    experiment_id: str
    title: str
    rows: List[Row]
    checks: List[dict] = field(default_factory=list)
    notes: str = ""

    @property
    def all_passed(self) -> bool:
        return all(check["passed"] for check in self.checks)


class Experiment:
    """Base class; subclasses define id/title/expectations and collect()."""

    experiment_id = "unknown"
    title = "unknown"
    paper_reference = ""

    def expectations(self, scale: float = 1.0) -> List[Expectation]:
        return []

    def collect(self, scale: float) -> List[Row]:
        raise NotImplementedError

    def run(self, scale: float = 1.0) -> ExperimentResult:
        rows = self.collect(scale)
        checks = []
        for expectation in self.expectations(scale):
            passed = bool(expectation.predicate(rows))
            checks.append({
                "description": expectation.description,
                "paper": expectation.paper_value,
                "measured": expectation.measured(rows),
                "passed": passed,
            })
        return ExperimentResult(self.experiment_id, self.title, rows, checks)


_REGISTRY: Dict[str, Callable[[], Experiment]] = {}


def register(factory: Callable[[], Experiment]) -> Callable[[], Experiment]:
    instance = factory()
    _REGISTRY[instance.experiment_id] = factory
    return factory


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return _REGISTRY[experiment_id]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None


def all_experiment_ids() -> List[str]:
    return sorted(_REGISTRY)


# -- row helpers ---------------------------------------------------------------

def find_row(rows: List[Row], **keys) -> Optional[Row]:
    for row in rows:
        if all(row.keys.get(name) == value for name, value in keys.items()):
            return row
    return None


def value_of(rows: List[Row], value_name: str, **keys) -> float:
    row = find_row(rows, **keys)
    if row is None:
        raise KeyError(f"no row matching {keys}")
    return row.values[value_name]
