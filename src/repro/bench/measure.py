"""Measurement helpers: run one VP + workload and collect metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..host.wallclock import elapsed_since, wall_clock
from ..systemc.time import SimTime
from ..vp.config import VpConfig
from ..vp.platform import build_platform
from ..vp.software import GuestSoftware


@dataclass
class RunMetrics:
    """What one simulation run produced."""

    platform: str
    workload: str
    num_cores: int
    quantum_us: float
    parallel: bool
    wfi_annotations: bool
    wall_seconds: float            # modeled host wall-clock (the paper's metric)
    sim_seconds: float             # simulated time
    instructions: int
    boot_seconds: Optional[float] = None
    py_runtime: float = 0.0        # actual Python runtime (diagnostics only)
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def mips(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.instructions / self.wall_seconds / 1e6


class RunDidNotFinish(RuntimeError):
    pass


def run_workload(
    kind: str,
    config: VpConfig,
    software: GuestSoftware,
    stop_on_boot: bool = False,
    max_sim_seconds: float = 10_000.0,
    require_finish: bool = True,
) -> RunMetrics:
    """Build a fresh platform, run the workload to completion, return metrics.

    Completion is either "all cores halted", "guest requested shutdown", or
    (with ``stop_on_boot``) the boot-done marker.
    """
    vp = build_platform(kind, config, software)
    if stop_on_boot:
        vp.simctl.on_boot_done = lambda _t: vp.sim.stop()
    started = wall_clock()
    try:
        end_time = vp.run(SimTime.seconds(max_sim_seconds))
    finally:
        # Tear down parallel executor lanes even when the run raises, so a
        # crashed leg never leaves worker threads parked on a queue.
        if vp.executor is not None:
            vp.executor.shutdown()
    py_runtime = elapsed_since(started)
    finished = (vp.all_halted or vp.simctl.shutdown_requested
                or (stop_on_boot and vp.simctl.boot_done_at is not None))
    if require_finish and not finished:
        raise RunDidNotFinish(
            f"{kind}/{software.name}: simulation hit the {max_sim_seconds}s "
            f"sim-time guard before finishing (ended at {end_time})"
        )
    counters: Dict[str, float] = {}
    for cpu in vp.cpus:
        for attr in ("num_mmio", "num_wfi_suspends", "num_wfi", "num_bus_errors",
                     "num_syncs", "num_simulate_calls"):
            value = getattr(cpu, attr, None)
            if value is not None:
                counters[attr] = counters.get(attr, 0) + value
    boot = vp.simctl.boot_done_at
    return RunMetrics(
        platform=kind,
        workload=software.name,
        num_cores=config.num_cores,
        quantum_us=config.quantum.to_us(),
        parallel=config.parallel,
        wfi_annotations=config.wfi_annotations,
        wall_seconds=vp.wall_time_seconds(),
        sim_seconds=end_time.to_seconds(),
        instructions=vp.total_instructions(),
        boot_seconds=boot.to_seconds() if boot is not None else None,
        py_runtime=py_runtime,
        counters=counters,
    )


def make_config(num_cores: int, quantum_us: float, parallel: bool,
                wfi_annotations: bool = False, **kwargs) -> VpConfig:
    return VpConfig(
        num_cores=num_cores,
        quantum=SimTime.us(quantum_us),
        parallel=parallel,
        wfi_annotations=wfi_annotations,
        **kwargs,
    )
