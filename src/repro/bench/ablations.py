"""Ablation experiments for the design choices DESIGN.md calls out.

* ``ablation-watchdog`` — Listing 1's kick-id filter vs naive kicks: an
  MMIO-heavy guest exits KVM early all the time, so without the filter,
  stale watchdog timers abort fresh runs and waste quanta.
* ``ablation-quantum``  — the temporal-decoupling trade-off: MIPS versus
  synchronization count (accuracy proxy) across quantum values [22].
* ``ablation-budget``   — wall-clock watchdog (this paper) vs
  perf-counter instruction budgets (prior work [3]): budget overshoot per
  quantum.  The wall-clock watchdog trades a small overshoot for working
  on hosts without usable PMUs (Asahi Linux).
"""

from __future__ import annotations

from typing import List

from ..iss.phase import Compute, Mmio
from ..vp.config import MemoryMap, VpConfig
from ..vp.software import GuestSoftware
from ..workloads.base import WorkloadInfo, bare_metal_software
from ..workloads.dhrystone import DhrystoneParams, dhrystone_software
from .experiment import Expectation, Experiment, Row, register, value_of
from .measure import make_config, run_workload


def _mmio_heavy_software(num_cores: int, accesses: int, compute_between: int) -> GuestSoftware:
    """A guest that traps to user space constantly (UART polling loop)."""

    def core_program(core: int):
        def program(ctx):
            for _ in range(accesses):
                yield Compute(compute_between, key="poll_loop", static_blocks=20)
                yield Mmio(MemoryMap.UART_BASE + 0x18, 4, False)   # read FR
        return program

    info = WorkloadInfo(f"mmio-heavy-{num_cores}c", "bare-metal",
                        accesses * compute_between)
    return bare_metal_software(info.name, num_cores, core_program, info)


@register
class AblationWatchdog(Experiment):
    experiment_id = "ablation-watchdog"
    title = "Watchdog kick-id filtering vs naive kicks (Listing 1)"
    paper_reference = "Section IV-B, Listing 1"

    def collect(self, scale: float) -> List[Row]:
        accesses = max(50, int(2_000 * scale))
        software = _mmio_heavy_software(1, accesses, compute_between=200_000)
        rows: List[Row] = []
        for unguarded in (False, True):
            config = make_config(1, 1000.0, False)
            config.unguarded_watchdog = unguarded
            metrics = run_workload("aoa", config, software)
            rows.append(Row(
                keys={"guarded": not unguarded},
                values={"mips": metrics.mips,
                        "wall_s": metrics.wall_seconds,
                        "sim_s": metrics.sim_seconds},
            ))
        return rows

    def expectations(self, scale: float = 1.0) -> List[Expectation]:
        def mips(rows, guarded):
            return value_of(rows, "mips", guarded=guarded)

        return [
            Expectation(
                "kick-id filtering outperforms naive kicks on MMIO-heavy code",
                "stale kicks would abort fresh KVM runs",
                lambda rows: mips(rows, True) > mips(rows, False),
                lambda rows: (f"guarded {mips(rows, True):.0f} MIPS vs "
                              f"unguarded {mips(rows, False):.0f} MIPS"),
            ),
        ]


@register
class AblationQuantum(Experiment):
    experiment_id = "ablation-quantum"
    title = "Quantum sweep: performance vs synchronization count"
    paper_reference = "Section III (temporal decoupling), refs [22-24]"

    QUANTA_US = (10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 20000.0)

    def collect(self, scale: float) -> List[Row]:
        iterations = max(20_000, int(2_000_000 * scale))
        software = dhrystone_software(4, DhrystoneParams(iterations))
        rows: List[Row] = []
        for quantum_us in self.QUANTA_US:
            config = make_config(4, quantum_us, True)
            metrics = run_workload("aoa", config, software)
            rows.append(Row(
                keys={"quantum_us": quantum_us},
                values={"mips": metrics.mips,
                        "syncs": metrics.counters.get("num_syncs", 0.0),
                        "wall_s": metrics.wall_seconds},
            ))
        return rows

    def expectations(self, scale: float = 1.0) -> List[Expectation]:
        def mips(rows, quantum):
            return value_of(rows, "mips", quantum_us=quantum)

        def syncs(rows, quantum):
            return value_of(rows, "syncs", quantum_us=quantum)

        return [
            Expectation(
                "larger quanta increase MIPS",
                "quantum controls the performance/accuracy trade-off",
                lambda rows: mips(rows, 5000.0) > mips(rows, 50.0),
                lambda rows: (f"50us: {mips(rows, 50.0):.0f}, "
                              f"5ms: {mips(rows, 5000.0):.0f} MIPS"),
            ),
            Expectation(
                "smaller quanta synchronize more often (higher accuracy)",
                "quantum defines how far a process runs ahead",
                lambda rows: syncs(rows, 50.0) > 10 * syncs(rows, 5000.0),
                lambda rows: (f"50us: {syncs(rows, 50.0):.0f} syncs, "
                              f"5ms: {syncs(rows, 5000.0):.0f} syncs"),
            ),
        ]


@register
class AblationBudget(Experiment):
    experiment_id = "ablation-budget"
    title = "Wall-clock watchdog vs perf-counter budget accuracy"
    paper_reference = "Section IV-B (perf-based prior work [3])"

    def collect(self, scale: float) -> List[Row]:
        from ..arch.registers import CpuState
        from ..host.params import KvmCostParams
        from ..iss.executor import GuestMemoryMap
        from ..iss.phase import PhaseContext, PhaseExecutor
        from ..kvm.api import Kvm

        runs = max(20, int(200 * scale))
        budget_cycles = 1_000_000
        freq_hz = 1e9

        def endless(ctx):
            while True:
                yield Compute(10_000_000, key="endless", static_blocks=10)

        rows: List[Row] = []
        for mode in ("wallclock", "perf"):
            memory = GuestMemoryMap()
            memory.add_slot(0, memoryview(bytearray(4096)))
            kvm = Kvm(KvmCostParams())
            vm = kvm.create_vm()
            executor = PhaseExecutor(endless, PhaseContext(0, memory))
            vcpu = vm.create_vcpu(0, executor)
            overshoot_total = 0.0
            for _ in range(runs):
                if mode == "wallclock":
                    budget_ns = budget_cycles * 1e9 / freq_hz
                    exit_info = vcpu.run(budget_ns, 1.0)
                    consumed = exit_info.wall_ns * freq_hz / 1e9
                else:
                    # perf mode: the PMU interrupt fires after exactly the
                    # budgeted number of guest instructions.
                    info = executor.run(budget_cycles)
                    consumed = info.instructions
                overshoot_total += max(0.0, consumed - budget_cycles)
            rows.append(Row(
                keys={"mode": mode},
                values={"mean_overshoot_cycles": overshoot_total / runs},
            ))
        return rows

    def expectations(self, scale: float = 1.0) -> List[Expectation]:
        def overshoot(rows, mode):
            return value_of(rows, "mean_overshoot_cycles", mode=mode)

        return [
            Expectation(
                "perf budgets are exact; the wall-clock watchdog overshoots slightly",
                "perf provides high accuracy but needs PMU features",
                lambda rows: (overshoot(rows, "perf") == 0.0
                              and 0.0 < overshoot(rows, "wallclock") < 50_000),
                lambda rows: (f"wallclock: {overshoot(rows, 'wallclock'):.0f} cycles, "
                              f"perf: {overshoot(rows, 'perf'):.0f} cycles"),
            ),
        ]
