"""Plain-text and markdown rendering of experiment results."""

from __future__ import annotations

from typing import List

from .experiment import ExperimentResult


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Fixed-width table of all measurement rows."""
    if not result.rows:
        return "(no rows)"
    key_names = list(result.rows[0].keys)
    value_names = list(result.rows[0].values)
    headers = key_names + value_names
    table: List[List[str]] = [headers]
    for row in result.rows:
        cells = [_format_value(row.keys[name]) for name in key_names]
        cells += [_format_value(row.values[name]) for name in value_names]
        table.append(cells)
    widths = [max(len(line[col]) for line in table) for col in range(len(headers))]
    lines = []
    for index, line in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_checks(result: ExperimentResult) -> str:
    if not result.checks:
        return "(no paper-claim checks)"
    lines = []
    for check in result.checks:
        status = "PASS" if check["passed"] else "FAIL"
        lines.append(f"[{status}] {check['description']}")
        lines.append(f"       paper:    {check['paper']}")
        lines.append(f"       measured: {check['measured']}")
    return "\n".join(lines)


def render_result(result: ExperimentResult) -> str:
    banner = f"=== {result.experiment_id}: {result.title} ==="
    parts = [banner, render_table(result), "", render_checks(result)]
    if result.notes:
        parts.append("")
        parts.append(result.notes)
    return "\n".join(parts)


def result_json(result: ExperimentResult, **extra) -> dict:
    """Machine-readable form of one experiment result.

    ``extra`` lands as additional top-level keys — the runner uses it for
    the determinism-ledger root digest and sidecar paths, so a farm can
    compare two runs' digests straight from the bench JSON.
    """
    doc = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "rows": [{"keys": dict(row.keys), "values": dict(row.values)}
                 for row in result.rows],
        "checks": list(result.checks),
        "all_passed": result.all_passed,
        "notes": result.notes,
    }
    doc.update(extra)
    return doc


def render_markdown(result: ExperimentResult) -> str:
    """Markdown section (used to regenerate EXPERIMENTS.md)."""
    lines = [f"### {result.experiment_id} — {result.title}", ""]
    if result.rows:
        key_names = list(result.rows[0].keys)
        value_names = list(result.rows[0].values)
        headers = key_names + value_names
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for row in result.rows:
            cells = [_format_value(row.keys[k]) for k in key_names]
            cells += [_format_value(row.values[v]) for v in value_names]
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    if result.checks:
        lines.append("| paper claim | paper value | measured | status |")
        lines.append("|---|---|---|---|")
        for check in result.checks:
            status = "✅" if check["passed"] else "❌"
            lines.append(
                f"| {check['description']} | {check['paper']} "
                f"| {check['measured']} | {status} |"
            )
        lines.append("")
    return "\n".join(lines)
