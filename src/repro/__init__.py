"""repro — ARM-on-ARM virtualization for multicore SystemC-TLM virtual
platforms.

A complete, self-contained Python reproduction of *High-Performance
ARM-on-ARM Virtualization for Multicore SystemC-TLM-Based Virtual
Platforms* (DATE 2025): a SystemC-like simulation kernel, a TLM-2.0 layer,
a VCML-style modeling library, an A64-lite guest architecture with a
functional interpreter, a simulated Linux-KVM hypervisor, the paper's
multicore KVM-backed CPU model (software watchdog, kick ids, WFI
annotations), the AVP64-like DBT-ISS baseline, two full virtual platforms,
the paper's workloads and a benchmark harness regenerating every figure.

Quick start::

    from repro.arch import assemble
    from repro.systemc import SimTime
    from repro.vp import GuestSoftware, VpConfig, build_platform

    image = assemble(MY_GUEST_SOURCE, base_address=0x1000)
    vp = build_platform("aoa", VpConfig(num_cores=2),
                        GuestSoftware(image=image, mode="interpreter"))
    vp.run(SimTime.ms(100))
    print(vp.console_output())
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "arch",
    "bench",
    "core",
    "host",
    "iss",
    "kvm",
    "models",
    "systemc",
    "telemetry",
    "tlm",
    "trace",
    "vcml",
    "vp",
    "workloads",
    "__version__",
]
