"""Capturing a running VirtualPlatform into a :class:`Snapshot`.

Snapshots are taken at *quiescent* points only: between ``run()`` calls,
with no runnable process, no pending delta activity and no queued channel
updates.  At such a point the complete dynamic state of the simulation is
(a) the kernel's timed-notification heap, (b) each SC_THREAD's park site
(the label :class:`~repro.vcml.processor.Processor` records before every
yield), and (c) module/device state reachable through ``snapshot_state``
hooks — all of which serialize to canonical JSON.

The timed heap holds callables; each live entry is introspected into one of
three descriptor shapes:

* ``{"type": "process", ...}`` — a :class:`_ProcessWakeup` for a parked
  SC_THREAD (sync waits, wait timeouts);
* ``{"type": "event", ...}`` — a pending ``Event.notify(t)``, stored by the
  event's hierarchical name;
* ``{"type": "method", ...}`` — a bound device method scheduled via
  ``schedule_callback`` (timer channel expiry, RTC match, clock tick),
  stored as (owner path, method name).

Anything else (a raw closure, a lambda) is a capture error — which is
exactly the class of state the RPR012 lint rule flags statically.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..host.wallclock import elapsed_since, wall_clock
from ..systemc.event import Event
from ..systemc.kernel import Kernel, _ProcessWakeup
from ..vp.config import VpConfig
from .format import FORMAT, PAGE_SIZE, SnapshotError, blob_digest, encode_trace, split_pages
from .image import Snapshot, _telemetry_registry
from .registry import build_registries, owner_paths_by_id

#: park sites a snapshot can represent.  "leg" (a parallel simulate leg in
#: flight) and "start" (thread never ran) are mid-quantum states; "reset"
#: never occurs on the shipped platforms (no reset line is bound).
_RESTORABLE_PARKS = ("sync", "break_sync", "debug", "wait_irq_sync", "wait_irq")


class TraceRecorder:
    """Record the kernel dispatch stream for snapshot prefix replay.

    Attach (as a context manager) before running the portion of the
    simulation that will be snapshotted; pass :attr:`entries` to
    ``capture``.  Registers at OBSERVER priority so DIGEST-tier hooks
    (DET001, the divergence ledger) are unaffected — recording is
    digest-neutral by construction.
    """

    def __init__(self):
        self.entries: List[Tuple[str, int, str]] = []
        self._handle = None

    def _record(self, kind: str, time_ps: int, name: str) -> None:
        self.entries.append((kind, time_ps, name))

    def __enter__(self) -> "TraceRecorder":
        self._handle = Kernel.add_trace_hook(self._record,
                                             Kernel.TRACE_PRIORITY_OBSERVER)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._handle is not None:
            Kernel.remove_trace_hook(self._handle)
            self._handle = None


def _check_quiescent(vp) -> Dict[int, object]:
    """Validate the capture point; returns {id(process): cpu} for the threads."""
    kernel = vp.kernel
    if kernel._running:
        raise SnapshotError("cannot snapshot while the kernel is running; "
                            "capture between run() calls")
    for queue, label in ((kernel._runnable, "runnable processes"),
                         (kernel._methods, "queued methods"),
                         (kernel._delta_events, "pending delta notifications"),
                         (kernel._delta_wakeups, "pending delta wakeups"),
                         (kernel._update_requests, "pending channel updates")):
        if queue:
            raise SnapshotError(f"not quiescent: {len(queue)} {label} pending")
    threads: Dict[int, object] = {}
    for cpu in vp.cpus:
        if cpu._thread is None:
            raise SnapshotError(f"{cpu.name}: not elaborated (no SC_THREAD); "
                                "run the platform before snapshotting")
        threads[id(cpu._thread)] = cpu
        if not cpu._thread.finished and cpu._park not in _RESTORABLE_PARKS:
            raise SnapshotError(
                f"{cpu.name}: parked at non-restorable site {cpu._park!r}; "
                "run to a quantum boundary first")
    for process in kernel._processes:
        if not process.finished and id(process) not in threads:
            raise SnapshotError(
                f"unknown live process {process.name!r}: only platform CPU "
                "threads can be snapshotted")
    return threads


def _serialize_heap(kernel, event_names: Dict[str, Event],
                    owner_paths: Dict[int, str]) -> List[dict]:
    """Canonically ordered descriptors for every live timed-heap entry.

    Entries are sorted by (due, seq) and the seq is *dropped*: restore
    assigns fresh sequence numbers in list order, which preserves relative
    firing order while keeping snapshot bytes independent of how many
    entries the original kernel ever allocated.
    """
    live = sorted((entry for entry in kernel._timed if not entry.cancelled),
                  key=lambda entry: (entry.due.picoseconds, entry.seq))
    out = []
    for entry in live:
        action = entry.action
        if isinstance(action, _ProcessWakeup):
            descriptor = {"type": "process", "process": action.process.name,
                          "timeout": bool(action.timeout)}
        elif getattr(action, "__self__", None) is not None:
            owner = action.__self__
            if isinstance(owner, Event) and action.__func__ is Event._fire:
                if event_names.get(owner.name) is not owner:
                    raise SnapshotError(
                        f"pending notification on unregistered event {owner.name!r}")
                descriptor = {"type": "event", "event": owner.name}
            else:
                path = owner_paths.get(id(owner))
                if path is None:
                    raise SnapshotError(
                        f"timed callback {action!r} is bound to an object outside "
                        "the module hierarchy; cannot serialize")
                descriptor = {"type": "method", "owner": path,
                              "method": action.__func__.__name__}
        else:
            raise SnapshotError(
                f"timed-heap entry due at {entry.due} holds a non-introspectable "
                f"action {action!r} (closure/lambda); see lint rule RPR012")
        out.append({"due_ps": entry.due.picoseconds, "action": descriptor})
    return out


def software_descriptor(software) -> dict:
    """Identity of the guest: enough to reject a mismatched restore.

    The image and phase programs are code and are re-supplied by the
    caller; ``info`` (workload parameters, e.g. scaled boot instruction
    counts) is canonicalized so e.g. the same workload at a different
    scale factor fails validation.
    """
    def canonical(value):
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return dataclasses.asdict(value)
        if isinstance(value, dict):
            return {key: canonical(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [canonical(item) for item in value]
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        return repr(value)

    return {
        "name": software.name,
        "mode": software.mode,
        "load_offset": software.load_offset,
        "entry": software.image.entry,
        "info": canonical(software.info),
    }


def serialize_config(config: VpConfig) -> dict:
    return {
        "num_cores": config.num_cores,
        "quantum_ps": config.quantum.picoseconds,
        "parallel": config.parallel,
        "wfi_annotations": config.wfi_annotations,
        "vcpu_clock_hz": config.vcpu_clock_hz,
        "ram_size": config.ram_size,
        # A custom HostMachine is host-specific calibration, not guest
        # state; restore demands an explicit config when one was used.
        "host_custom": config.host is not None,
        "kvm_costs": dataclasses.asdict(config.kvm_costs),
        "iss_costs": dataclasses.asdict(config.iss_costs),
        "sim_costs": dataclasses.asdict(config.sim_costs),
        "timer_frequency_hz": config.timer_frequency_hz,
        "track_host_time": config.track_host_time,
        "unguarded_watchdog": config.unguarded_watchdog,
        "exec_backend": config.exec_backend,
    }


def capture_platform(vp, trace: Optional[List[Tuple[str, int, str]]] = None,
                     scenario: Optional[dict] = None) -> Snapshot:
    """Capture ``vp`` at a quiescent point into a :class:`Snapshot`.

    ``trace`` is an optional dispatch-stream prefix (from
    :class:`TraceRecorder`) that restore replays into trace hooks so a
    digest attached before restore sees the cold run's complete stream.
    ``scenario`` is opaque harness metadata (e.g. how the guest software
    was built) stored verbatim in the manifest.
    """
    started = wall_clock()
    kernel = vp.kernel
    _check_quiescent(vp)
    event_names, owners = build_registries(vp)
    owner_paths = owner_paths_by_id(owners)

    blobs: Dict[str, bytes] = {}
    pages: Dict[str, str] = {}
    for index, page in split_pages(vp.ram.data, PAGE_SIZE):
        sha = blob_digest(page)
        blobs[sha] = page
        pages[str(index)] = sha

    trace_section = None
    trace_blob = encode_trace(trace)
    if trace_blob is not None:
        sha = blob_digest(trace_blob)
        blobs[sha] = trace_blob
        trace_section = {"sha": sha, "entries": len(trace)}

    regs = {}
    for label in ("timer", "uart", "rtc", "sdhci", "simctl"):
        device = getattr(vp, label)
        regs[label] = device.regs.snapshot_values()

    manifest = {
        "format": FORMAT,
        "kind": "aoa" if hasattr(vp, "kvm") else "avp64",
        "partial": False,
        "lineage": {"parent": None, "fork_index": None},
        "config": serialize_config(vp.config),
        "software": software_descriptor(vp.software),
        "sim": {
            "now_ps": kernel._now.picoseconds,
            "delta_count": kernel.delta_count,
            "halted_cores": vp._halted_cores,
        },
        "kernel": {"timed": _serialize_heap(kernel, event_names, owner_paths)},
        "processes": [
            {"name": cpu._thread.name, "core": cpu.core_id,
             "park": cpu._park, "finished": cpu._thread.finished}
            for cpu in vp.cpus
        ],
        "devices": {
            "gic": vp.gic.snapshot_state(),
            "timer": vp.timer.snapshot_state(),
            "uart": vp.uart.snapshot_state(),
            "rtc": vp.rtc.snapshot_state(),
            "sdhci": vp.sdhci.snapshot_state(),
            "simctl": vp.simctl.snapshot_state(),
            "monitor": vp.monitor.snapshot_state(),
        },
        "regs": regs,
        "cpus": [cpu.snapshot_state() for cpu in vp.cpus],
        "ports": {
            "loader": vp.loader.snapshot_state(),
            "cpus": [cpu.mem.snapshot_state() for cpu in vp.cpus],
        },
        "memory": vp.ram.snapshot_state(),
        "watchdog": (vp.watchdog.snapshot_state()
                     if hasattr(vp, "watchdog") else None),
        "ledger": None if vp.ledger is None else vp.ledger.snapshot_state(),
        "ram": {"size": vp.ram.size, "page_size": PAGE_SIZE, "pages": pages},
        "trace": trace_section,
        "scenario": dict(scenario or {}),
    }
    snapshot = Snapshot(manifest, blobs)
    registry = _telemetry_registry()
    if registry is not None:
        registry.histogram("snapshot.save_ns").observe(
            int(elapsed_since(started) * 1e9))
    return snapshot
