"""The ``repro.snapshot/1`` container format.

A snapshot is two things:

* a **manifest** — one canonical-JSON document describing the complete VP
  state: kernel event queue, device registers, vCPU architectural state,
  ledger windows, and the guest-RAM page table;
* a **blob store** — content-addressed byte blobs (sha256 → bytes) holding
  guest-RAM pages and the compressed trace prefix.  RAM pages are sparse
  (all-zero pages are omitted) and deduplicated (identical pages share one
  blob), so a mostly-idle guest snapshots in a few kilobytes.

Canonical bytes are a format-level guarantee: the manifest serializes with
sorted keys and no whitespace, blobs are stored in sha order, and every
producer upstream (device ``snapshot_state`` methods, the kernel-heap
serializer) emits canonically ordered collections — so capturing the same
state twice yields bit-identical files and ``snapshot_id`` values
(DESIGN §16).

On-disk layout::

    b"RSNAP1\\n"
    u32 zlen | zlib(manifest canonical JSON)
    u32 blob count
    per blob, sorted by sha hex:
        64-byte ascii sha256 | u32 raw len | u32 zlen | zlib(bytes)
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from typing import Dict, Iterator, Optional, Tuple

MAGIC = b"RSNAP1\n"
FORMAT = "repro.snapshot/1"

#: guest-RAM serialization granularity (matches the fabric's DMI-promotion
#: page size, but the two are independent knobs)
PAGE_SIZE = 4096


class SnapshotError(RuntimeError):
    """Raised when state cannot be captured, serialized, or restored."""


def canonical_manifest_bytes(manifest: dict) -> bytes:
    """The manifest's canonical JSON encoding (sorted keys, no whitespace)."""
    try:
        return json.dumps(manifest, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"manifest is not JSON-serializable: {exc}") from exc


def manifest_digest(manifest: dict) -> str:
    """The snapshot id: sha256 over the canonical manifest bytes.

    RAM content is covered transitively — the manifest embeds the page
    table's blob hashes — so two snapshots share an id iff their entire
    state is identical.
    """
    return hashlib.sha256(canonical_manifest_bytes(manifest)).hexdigest()


def blob_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def split_pages(data, page_size: int = PAGE_SIZE) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(page_index, page_bytes)`` for every non-zero page."""
    zero = bytes(page_size)
    view = memoryview(data)
    for index in range((len(data) + page_size - 1) // page_size):
        page = bytes(view[index * page_size:(index + 1) * page_size])
        if page != zero[:len(page)]:
            yield index, page


def write_container(path: str, manifest: dict, blobs: Dict[str, bytes]) -> int:
    """Write one snapshot file; returns the number of bytes written."""
    manifest_bytes = canonical_manifest_bytes(manifest)
    out = bytearray()
    out += MAGIC
    packed = zlib.compress(manifest_bytes, 6)
    out += struct.pack(">I", len(packed))
    out += packed
    out += struct.pack(">I", len(blobs))
    for sha in sorted(blobs):
        data = blobs[sha]
        if blob_digest(data) != sha:
            raise SnapshotError(f"blob store corrupt: {sha} does not match its content")
        packed = zlib.compress(data, 6)
        out += sha.encode("ascii")
        out += struct.pack(">II", len(data), len(packed))
        out += packed
    with open(path, "wb") as stream:
        stream.write(out)
    return len(out)


def read_container(path: str) -> Tuple[dict, Dict[str, bytes]]:
    """Read a snapshot file back into ``(manifest, blobs)``."""
    with open(path, "rb") as stream:
        data = stream.read()
    if not data.startswith(MAGIC):
        raise SnapshotError(f"{path}: not a repro.snapshot container (bad magic)")
    offset = len(MAGIC)

    def take(count: int) -> bytes:
        nonlocal offset
        if offset + count > len(data):
            raise SnapshotError(f"{path}: truncated container")
        chunk = data[offset:offset + count]
        offset += count
        return chunk

    (zlen,) = struct.unpack(">I", take(4))
    manifest = json.loads(zlib.decompress(take(zlen)).decode("utf-8"))
    if manifest.get("format") != FORMAT:
        raise SnapshotError(
            f"{path}: unsupported snapshot format {manifest.get('format')!r} "
            f"(this reader understands {FORMAT})")
    (count,) = struct.unpack(">I", take(4))
    blobs: Dict[str, bytes] = {}
    for _ in range(count):
        sha = take(64).decode("ascii")
        raw_len, zlen = struct.unpack(">II", take(8))
        blob = zlib.decompress(take(zlen))
        if len(blob) != raw_len or blob_digest(blob) != sha:
            raise SnapshotError(f"{path}: blob {sha} failed integrity check")
        blobs[sha] = blob
    return manifest, blobs


def encode_trace(entries) -> Optional[bytes]:
    """Compress a dispatch-trace prefix (list of (kind, time_ps, name))."""
    if not entries:
        return None
    lines = "\n".join(f"{kind}|{time_ps}|{name}"
                      for kind, time_ps, name in entries)
    return zlib.compress(lines.encode("utf-8"), 6)


def decode_trace(blob: bytes):
    """Inverse of :func:`encode_trace`."""
    entries = []
    for line in zlib.decompress(blob).decode("utf-8").splitlines():
        kind, time_ps, name = line.split("|", 2)
        entries.append((kind, int(time_ps), name))
    return entries
