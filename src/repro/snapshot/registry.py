"""Name registries connecting serialized state to live objects.

The kernel's timed heap holds *callables* — process wakeups, pending event
notifications, bound device methods.  Serializing them requires stable
names; restoring requires resolving those names against the freshly built
platform.  Both directions use the registries built here:

* **events** — every :class:`~repro.systemc.event.Event` reachable from
  the module hierarchy, keyed by its (hierarchical, unique) name.  IrqLine
  edge events, Signal value-changed events, Clock posedge and Reset edge
  events are all included.
* **owners** — every object whose bound methods may sit in the timed heap,
  keyed by a stable path: modules by hierarchical name, clocks by name,
  timer channels as ``"<timer>#channel<i>"``.

Both registries are pure introspection over a built platform, so capture
and restore resolve against identical name sets by construction.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..models.timer import MmTimer
from ..systemc.clock import Clock, Reset
from ..systemc.event import Event
from ..systemc.signal import IrqLine, Signal


def build_registries(vp) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Return ``(events_by_name, owners_by_path)`` for a built platform."""
    events: Dict[str, Event] = {}
    owners: Dict[str, object] = {}

    def add_event(event: Event) -> None:
        events.setdefault(event.name, event)

    def visit(value) -> None:
        if isinstance(value, Event):
            add_event(value)
        elif isinstance(value, IrqLine):
            add_event(value.raised)
            add_event(value.lowered)
            add_event(value.changed)
        elif isinstance(value, Signal):
            add_event(value.value_changed)
        elif isinstance(value, Clock):
            owners[value.name] = value
            add_event(value.posedge)
        elif isinstance(value, Reset):
            add_event(value.asserted_event)
            add_event(value.deasserted_event)

    for module in vp.iter_hierarchy():
        owners[module.name] = module
        for value in vars(module).values():
            if isinstance(value, dict):
                for item in value.values():
                    visit(item)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    visit(item)
            else:
                visit(value)
        if isinstance(module, MmTimer):
            for index, channel in enumerate(module.channels):
                owners[f"{module.name}#channel{index}"] = channel
                visit(channel.irq)
    return events, owners


def owner_paths_by_id(owners: Dict[str, object]) -> Dict[int, str]:
    """Invert an owners registry for capture-side lookup by identity."""
    return {id(owner): path for path, owner in owners.items()}
