"""The :class:`Snapshot` object — an in-memory snapshot image.

A snapshot is a manifest (canonical JSON) plus a content-addressed blob
store.  Forked children implement copy-on-write sharing: a child starts
with an *empty* own blob store and a reference to its parent; blob lookup
walks the parent chain, and :meth:`poke_ram` writes land in the child's own
store, leaving siblings and the parent untouched.  :meth:`save` resolves
the full chain so files on disk are always standalone.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .format import (
    FORMAT,
    SnapshotError,
    blob_digest,
    canonical_manifest_bytes,
    manifest_digest,
    read_container,
    write_container,
)


def _telemetry_registry():
    from ..telemetry import active_telemetry
    active = active_telemetry()
    return None if active is None else active.registry


class Snapshot:
    """One captured VP state; immutable except through :meth:`poke_ram`."""

    def __init__(self, manifest: dict, blobs: Dict[str, bytes],
                 parent: Optional["Snapshot"] = None):
        if manifest.get("format") != FORMAT:
            raise SnapshotError(
                f"manifest format {manifest.get('format')!r} is not {FORMAT}")
        self.manifest = manifest
        self._blobs = blobs
        self._parent = parent

    # -- identity -----------------------------------------------------------
    @property
    def snapshot_id(self) -> str:
        """sha256 of the canonical manifest; covers RAM via its page hashes."""
        return manifest_digest(self.manifest)

    @property
    def partial(self) -> bool:
        return bool(self.manifest.get("partial"))

    @property
    def kind(self) -> str:
        return self.manifest["kind"]

    @property
    def sim_time_ps(self) -> int:
        return self.manifest["sim"]["now_ps"]

    # -- blob store ----------------------------------------------------------
    def blob(self, sha: str) -> bytes:
        """Resolve one blob, walking the copy-on-write parent chain."""
        node: Optional[Snapshot] = self
        while node is not None:
            data = node._blobs.get(sha)
            if data is not None:
                return data
            node = node._parent
        raise SnapshotError(f"snapshot {self.snapshot_id[:12]}: missing blob {sha}")

    def referenced_shas(self) -> List[str]:
        shas = list(self.manifest.get("ram", {}).get("pages", {}).values())
        trace = self.manifest.get("trace")
        if trace is not None:
            shas.append(trace["sha"])
        return shas

    def ram_bytes(self) -> bytes:
        """Materialize the full (dense) guest-RAM content."""
        ram = self.manifest["ram"]
        size, page_size = ram["size"], ram["page_size"]
        data = bytearray(size)
        for index_str, sha in ram["pages"].items():
            offset = int(index_str) * page_size
            page = self.blob(sha)
            data[offset:offset + len(page)] = page
        return bytes(data)

    # -- persistence ----------------------------------------------------------
    def save(self, path: str) -> int:
        """Write a standalone container file; returns bytes written."""
        blobs = {sha: self.blob(sha) for sha in self.referenced_shas()}
        written = write_container(path, self.manifest, blobs)
        registry = _telemetry_registry()
        if registry is not None:
            registry.counter("snapshot.bytes").inc(written)
        return written

    @classmethod
    def load(cls, path: str) -> "Snapshot":
        manifest, blobs = read_container(path)
        return cls(manifest, blobs)

    # -- capture / restore (delegates; see capture.py / restore.py) -----------
    @classmethod
    def capture(cls, vp, trace=None) -> "Snapshot":
        from .capture import capture_platform
        return capture_platform(vp, trace=trace)

    def restore(self, software, config=None, kind: Optional[str] = None):
        from .restore import restore_platform
        return restore_platform(self, software, config=config, kind=kind)

    @classmethod
    def from_flight_bundle(cls, path: str) -> "Snapshot":
        from .flight import snapshot_from_flight_bundle
        return snapshot_from_flight_bundle(path)

    # -- forking ---------------------------------------------------------------
    def fork(self, count: int) -> List["Snapshot"]:
        """Branch ``count`` copy-on-write children off this snapshot.

        Each child gets a deep-copied manifest (so poke_ram diverges freely),
        lineage metadata pointing back here, and an empty own blob store
        backed by this snapshot's chain.
        """
        if count < 1:
            raise ValueError(f"fork count must be >= 1, got {count}")
        if self.partial:
            raise SnapshotError("cannot fork a partial (flight-bundle) snapshot")
        parent_id = self.snapshot_id
        children = []
        for index in range(count):
            manifest = json.loads(canonical_manifest_bytes(self.manifest).decode("utf-8"))
            manifest["lineage"] = {"parent": parent_id, "fork_index": index}
            children.append(Snapshot(manifest, {}, parent=self))
        registry = _telemetry_registry()
        if registry is not None:
            registry.counter("fork.count").inc(count)
        return children

    def poke_ram(self, address: int, data: bytes) -> None:
        """Overwrite guest RAM in this snapshot image (copy-on-write).

        The divergent input injector for forked scenarios: siblings sharing
        the same parent see none of each other's pokes.
        """
        if self.partial:
            raise SnapshotError("cannot poke RAM of a partial snapshot")
        ram = self.manifest["ram"]
        size, page_size = ram["size"], ram["page_size"]
        if address < 0 or address + len(data) > size:
            raise SnapshotError(
                f"poke of {len(data)} bytes at 0x{address:x} outside RAM of {size} bytes")
        pages = ram["pages"]
        offset = 0
        while offset < len(data):
            index = (address + offset) // page_size
            page_offset = (address + offset) % page_size
            chunk = min(page_size - page_offset, len(data) - offset)
            page_len = min(page_size, size - index * page_size)
            sha = pages.get(str(index))
            page = bytearray(self.blob(sha)) if sha is not None else bytearray(page_len)
            if len(page) < page_len:
                page.extend(bytes(page_len - len(page)))
            page[page_offset:page_offset + chunk] = data[offset:offset + chunk]
            if any(page):
                new_sha = blob_digest(bytes(page))
                self._blobs[new_sha] = bytes(page)
                pages[str(index)] = new_sha
            else:
                pages.pop(str(index), None)
            offset += chunk

    def __repr__(self) -> str:
        flavor = "partial " if self.partial else ""
        return (f"Snapshot({flavor}{self.manifest.get('kind', '?')} "
                f"@ {self.sim_time_ps} ps, id={self.snapshot_id[:12]})")
