"""Restoring a :class:`Snapshot` into a runnable VirtualPlatform.

Restore re-runs platform *construction* (which rebuilds all static wiring:
sockets, routers, IRQ lines, executors) and then overwrites every piece of
dynamic state from the manifest:

1. CPU SC_THREADs are pre-created as fresh generators entering
   :meth:`Processor._resume_thread` at the serialized park site, and
   installed *before* elaboration so ``start_of_simulation`` does not spawn
   the normal (from-the-top) thread bodies.
2. All kernel queues are cleared and the timed heap is rebuilt from the
   canonical descriptors, drawing fresh sequence numbers in serialized
   order — relative firing order is preserved exactly, and entries created
   after restore correctly sort behind restored ones.
3. Guest RAM is written *in place* (slice assignment into the existing
   bytearray) so DMI memoryviews and KVM memory slots resolved during
   construction stay valid.
4. Devices, registers, CPUs, fabric ports, watchdog, monitor and ledger
   restore through their ``snapshot_state``/``restore_state`` hooks.
5. The recorded dispatch-trace prefix is replayed through the kernel's
   trace hook, so a DET001 digest attached before restore folds the same
   complete stream a cold run produces.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Optional

from ..host.params import IssCostParams, KvmCostParams, SimulationCostParams
from ..host.wallclock import elapsed_since, wall_clock
from ..systemc.kernel import _TimedEntry
from ..systemc.process import Process, ProcessState
from ..systemc.time import SimTime
from ..vp.config import VpConfig
from ..vp.platform import build_platform
from .format import SnapshotError, decode_trace
from .image import Snapshot, _telemetry_registry
from .registry import build_registries

#: owner-side attribute that holds the cancellation handle for a scheduled
#: bound method, keyed by method name (see models/timer.py, models/rtc.py).
_METHOD_HANDLE_ATTR = {
    "_expire": "_entry",          # timer _Channel countdown
    "_match_fired": "_match_entry",  # PL031 RTC alarm
}


def config_from_manifest(section: dict) -> VpConfig:
    if section["host_custom"]:
        raise SnapshotError(
            "snapshot was captured with a custom HostMachine; pass the same "
            "config explicitly to restore()")
    return VpConfig(
        num_cores=section["num_cores"],
        quantum=SimTime(section["quantum_ps"]),
        parallel=section["parallel"],
        wfi_annotations=section["wfi_annotations"],
        vcpu_clock_hz=section["vcpu_clock_hz"],
        ram_size=section["ram_size"],
        host=None,
        kvm_costs=KvmCostParams(**section["kvm_costs"]),
        iss_costs=IssCostParams(**section["iss_costs"]),
        sim_costs=SimulationCostParams(**section["sim_costs"]),
        timer_frequency_hz=section["timer_frequency_hz"],
        track_host_time=section["track_host_time"],
        unguarded_watchdog=section["unguarded_watchdog"],
        exec_backend=section["exec_backend"],
    )


def _validate_software(section: dict, software) -> None:
    """The guest image/programs are code, not data: the caller re-supplies
    them and we verify the descriptor matches what was captured."""
    from .capture import software_descriptor
    actual = software_descriptor(software)
    if actual != section:
        raise SnapshotError(
            f"software mismatch: snapshot was captured with {section}, "
            f"restore was given {actual}")


def _rebuild_heap(vp, manifest: dict) -> None:
    kernel = vp.kernel
    events, owners = build_registries(vp)
    processes = {cpu._thread.name: cpu._thread for cpu in vp.cpus}
    for item in manifest["kernel"]["timed"]:
        due = SimTime(item["due_ps"])
        descriptor = item["action"]
        kind = descriptor["type"]
        if kind == "process":
            process = processes.get(descriptor["process"])
            if process is None:
                raise SnapshotError(
                    f"heap entry references unknown process {descriptor['process']!r}")
            entry = kernel._schedule_timed_wakeup(process, due,
                                                  timeout=descriptor["timeout"])
            # Mirror Process._arm: the waiting process owns the handle so a
            # later event wake cancels the stale timer.
            process._timeout_handle = entry
        elif kind == "event":
            event = events.get(descriptor["event"])
            if event is None:
                raise SnapshotError(
                    f"heap entry references unknown event {descriptor['event']!r}")
            entry = kernel._schedule_timed_notification(event, due)
            event._pending_time = due
            event._pending_delta = False
            event._pending_handle = entry
        elif kind == "method":
            owner = owners.get(descriptor["owner"])
            if owner is None:
                raise SnapshotError(
                    f"heap entry references unknown owner {descriptor['owner']!r}")
            method = getattr(owner, descriptor["method"], None)
            if method is None:
                raise SnapshotError(
                    f"owner {descriptor['owner']!r} has no method "
                    f"{descriptor['method']!r}")
            entry = _TimedEntry(due, next(kernel._seq), method)
            heapq.heappush(kernel._timed, entry)
            handle_attr = _METHOD_HANDLE_ATTR.get(descriptor["method"])
            if handle_attr is not None:
                setattr(owner, handle_attr, entry)
        else:
            raise SnapshotError(f"unknown heap action type {kind!r}")


def restore_platform(snapshot: Snapshot, software, config: Optional[VpConfig] = None,
                     kind: Optional[str] = None):
    """Reconstruct a runnable VirtualPlatform from ``snapshot``.

    ``software`` must be the same guest the snapshot was captured with
    (validated against the manifest's descriptor).  ``config`` defaults to
    the serialized configuration; pass one explicitly to override (e.g.
    when the snapshot used a custom HostMachine).  Returns the platform,
    ready for ``vp.run()``.
    """
    started = wall_clock()
    manifest = snapshot.manifest
    if snapshot.partial:
        raise SnapshotError(
            "partial snapshot (flight bundle): holds post-mortem state only "
            "and cannot be restored into a runnable platform")
    kind = kind or manifest["kind"]
    if config is None:
        config = config_from_manifest(manifest["config"])
    _validate_software(manifest["software"], software)
    if len(manifest["processes"]) != config.num_cores:
        raise SnapshotError(
            f"snapshot has {len(manifest['processes'])} cores, config wants "
            f"{config.num_cores}")

    vp = build_platform(kind, config, software)
    kernel = vp.kernel

    # (1) park-site thread resurrection, installed before elaboration.
    for cpu, info in zip(vp.cpus, manifest["processes"]):
        process = Process(info["name"],
                          (lambda c=cpu, s=info["park"]: c._resume_thread(s)),
                          kernel)
        kernel._processes.append(process)
        process.state = (ProcessState.FINISHED if info["finished"]
                         else ProcessState.WAITING)
        cpu._thread = process
    vp.sim.elaborate()

    # (2) wipe every scheduler queue; construction-time activity of the
    # fresh platform is superseded wholesale by the serialized state.
    kernel._runnable.clear()
    kernel._runnable_set.clear()
    kernel._delta_events.clear()
    kernel._delta_wakeups.clear()
    kernel._methods.clear()
    kernel._update_requests.clear()
    kernel._update_request_ids.clear()
    kernel._timed = []
    kernel._seq = itertools.count()
    kernel._now = SimTime(manifest["sim"]["now_ps"])
    kernel.delta_count = manifest["sim"]["delta_count"]
    vp._halted_cores = manifest["sim"]["halted_cores"]

    # (3) guest RAM, in place (DMI memoryviews / KVM slots stay valid).
    ram = manifest["ram"]
    if ram["size"] != vp.ram.size:
        raise SnapshotError(
            f"RAM size mismatch: snapshot {ram['size']}, platform {vp.ram.size}")
    vp.ram.data[:] = bytes(vp.ram.size)
    page_size = ram["page_size"]
    for index_str, sha in ram["pages"].items():
        offset = int(index_str) * page_size
        page = snapshot.blob(sha)
        vp.ram.data[offset:offset + len(page)] = page
    vp.ram.restore_state(manifest["memory"])

    # (4) devices, registers, CPUs, ports, watchdog, monitor, ledger.
    devices = manifest["devices"]
    vp.gic.restore_state(devices["gic"])
    vp.timer.restore_state(devices["timer"])
    vp.uart.restore_state(devices["uart"])
    vp.rtc.restore_state(devices["rtc"])
    vp.sdhci.restore_state(devices["sdhci"])
    vp.simctl.restore_state(devices["simctl"])
    vp.monitor.restore_state(devices["monitor"])
    for label, values in manifest["regs"].items():
        getattr(vp, label).regs.restore_values(values)
    for cpu, state in zip(vp.cpus, manifest["cpus"]):
        cpu.restore_state(state)
    vp.loader.restore_state(manifest["ports"]["loader"])
    for cpu, state in zip(vp.cpus, manifest["ports"]["cpus"]):
        cpu.mem.restore_state(state)
    if manifest["watchdog"] is not None:
        if not hasattr(vp, "watchdog"):
            raise SnapshotError("snapshot has watchdog state but platform has none")
        vp.watchdog.restore_state(manifest["watchdog"],
                                  {cpu.core_id: cpu.kick_guard for cpu in vp.cpus})
    if manifest["ledger"] is not None and vp.ledger is not None:
        vp.ledger.restore_state(manifest["ledger"])

    # (5) timed heap + event-side relinks.
    _rebuild_heap(vp, manifest)

    # (6) event waiters for threads parked on an Event (not a timed wait).
    for cpu, info in zip(vp.cpus, manifest["processes"]):
        if info["finished"]:
            continue
        if info["park"] == "wait_irq":
            cpu.irq_event._attach(kernel)
            cpu.irq_event._add_waiter(cpu._thread)
            cpu._thread._waiting_events = (cpu.irq_event,)
        elif info["park"] == "debug":
            cpu.debug_resume_event._attach(kernel)
            cpu.debug_resume_event._add_waiter(cpu._thread)
            cpu._thread._waiting_events = (cpu.debug_resume_event,)

    # (7) trace-prefix replay: feed the recorded cold-run dispatch stream
    # through whatever hooks are attached *now*, so digests over the resumed
    # run cover prefix + live suffix — bit-identical to the cold stream.
    trace = manifest.get("trace")
    if trace is not None:
        hook = vp.kernel.trace_hook   # instance read: per-kernel shadow wins
        if hook is not None:
            for kind_, time_ps, name in decode_trace(snapshot.blob(trace["sha"])):
                hook(kind_, time_ps, name)

    registry = _telemetry_registry()
    if registry is not None:
        registry.histogram("snapshot.restore_ns").observe(
            int(elapsed_since(started) * 1e9))
    return vp
