"""Importing flight-recorder crash bundles as *partial* snapshots.

A crash bundle (:mod:`repro.flight.bundle`) freezes what a human needs for
post-mortem — per-core registers, the event journal, console tail — but
not the complete VP state (no RAM image, no kernel event queue).  This
module lifts a bundle into the snapshot format as a ``partial`` snapshot:
it shares the container/manifest machinery (save, load, ``snapshot_id``,
inspection), but ``restore()`` and ``fork()`` refuse it — resuming
execution from post-mortem state would silently invent the missing state.
"""

from __future__ import annotations

import json
import os

from .format import FORMAT, SnapshotError
from .image import Snapshot


def _read_json(path: str):
    with open(path, "r") as stream:
        return json.load(stream)


def snapshot_from_flight_bundle(path: str) -> Snapshot:
    """Wrap a crash-bundle directory as a partial :class:`Snapshot`."""
    meta_path = os.path.join(path, "meta.json")
    if not os.path.isfile(meta_path):
        raise SnapshotError(f"{path}: not a flight bundle (no meta.json)")
    meta = _read_json(meta_path)

    cores = []
    cores_dir = os.path.join(path, "cores")
    if os.path.isdir(cores_dir):
        for name in sorted(os.listdir(cores_dir)):
            if name.endswith(".json"):
                cores.append(_read_json(os.path.join(cores_dir, name)))

    metrics_path = os.path.join(path, "metrics.json")
    metrics = _read_json(metrics_path) if os.path.isfile(metrics_path) else None

    platform = meta.get("platform", {})
    kind = "aoa" if "Aoa" in str(platform.get("kind", "")) else "avp64"
    manifest = {
        "format": FORMAT,
        "kind": kind,
        "partial": True,
        "lineage": {"parent": None, "fork_index": None},
        "sim": {"now_ps": meta.get("sim_time_ps", 0)},
        "flight": {
            "bundle_path": os.path.abspath(path),
            "reason": meta.get("reason"),
            "detail": meta.get("detail"),
            "platform": platform,
            "simctl": meta.get("simctl"),
            "total_instructions": meta.get("total_instructions"),
            "console_tail": meta.get("console_tail"),
        },
        "cores": cores,
        "metrics": metrics,
        "ram": {"size": 0, "page_size": 0, "pages": {}},
        "trace": None,
        "scenario": {},
    }
    return Snapshot(manifest, {})
