"""repro.snapshot — full-VP snapshot/restore with warm scenario forking.

The ``repro.snapshot/1`` format serializes the complete state of a running
virtual platform — the kernel's event queue, every device's registers and
latched IRQ levels, guest RAM (sparse, page-deduped), vCPU architectural
state with MMU/TLB caches, DMI/promotion bookkeeping, the host-time ledger
and each SC_THREAD's park site — into one content-addressed container.

Typical flow (what ``repro.bench bench --from-snapshot`` automates)::

    from repro.snapshot import Snapshot, TraceRecorder

    with TraceRecorder() as rec:          # digest-neutral dispatch recording
        vp.run(SimTime.ms(50))            # warm boot
    snap = Snapshot.capture(vp, trace=rec.entries)
    snap.save("boot.rsnap")

    for child in snap.fork(3):            # copy-on-write children
        child.poke_ram(0x8000, scenario_input)
        vp2 = child.restore(software)     # trace prefix replays into hooks
        vp2.run(SimTime.ms(50))

Correctness gate: a DET001 digest (``repro.analysis.determinism``) attached
before ``restore`` observes the replayed prefix plus the resumed run's live
dispatches, and must equal the digest of an uninterrupted cold run
bit-for-bit — on both the serial and threads execution backends.
"""

from .capture import TraceRecorder, capture_platform, serialize_config
from .flight import snapshot_from_flight_bundle
from .format import FORMAT, PAGE_SIZE, SnapshotError, manifest_digest
from .image import Snapshot
from .restore import config_from_manifest, restore_platform

__all__ = [
    "FORMAT",
    "PAGE_SIZE",
    "Snapshot",
    "SnapshotError",
    "TraceRecorder",
    "capture_platform",
    "config_from_manifest",
    "manifest_digest",
    "restore_platform",
    "serialize_config",
    "snapshot_from_flight_bundle",
]
