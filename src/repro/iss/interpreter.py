"""Functional A64-lite interpreter.

Executes guest instructions one at a time against a :class:`CpuState`, a
stage-1 :class:`Mmu` and a :class:`GuestMemoryMap`.  Control returns to the
caller through :class:`ExitInfo` — the same exit protocol the simulated KVM
uses — so the ISS-based and KVM-based CPU models can share all plumbing
above this layer.

MMIO follows the KVM two-phase protocol: an access to a non-RAM physical
address stops execution *before* retiring the instruction and surfaces an
:class:`MmioRequest`; the platform performs the access (a TLM transaction)
and calls :meth:`Interpreter.complete_mmio`, which retires the instruction
and lets the next ``run`` continue.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from ..arch.exceptions import (
    ExceptionClass,
    GuestFault,
    do_eret,
    take_irq,
    take_sync_exception,
)
from ..arch.isa import BLOCK_TERMINATORS, Cond, DecodeError, Instruction, Op, SysReg, decode
from ..arch.mmu import Mmu
from ..arch.registers import MASK64, CpuState
from .executor import ExitInfo, ExitReason, GuestMemoryMap, MmioRequest, RunStats

_SIZE = {Op.LDR: 8, Op.STR: 8, Op.LDRW: 4, Op.STRW: 4, Op.LDRB: 1, Op.STRB: 1}

#: System registers EL0 is allowed to touch.
_EL0_SYSREGS = {
    int(SysReg.CNTFRQ_EL0), int(SysReg.CNTVCT_EL0), int(SysReg.TPIDR_EL0),
    int(SysReg.CURRENT_EL), int(SysReg.DAIF),
}


class GlobalMonitor:
    """The global exclusive monitor shared by all cores.

    Real hardware invalidates a core's exclusive reservation when another
    agent writes the monitored location; without this, LDXR/STXR spinlocks
    would miss updates.  VP construction creates one monitor and hands it to
    every executor.
    """

    def __init__(self):
        self._marks: Dict[int, int] = {}      # core -> physical address

    def mark(self, core: int, address: int) -> None:
        self._marks[core] = address

    def clear(self, core: int) -> None:
        self._marks.pop(core, None)

    def check(self, core: int, address: int) -> bool:
        return self._marks.get(core) == address

    def on_store(self, address: int, size: int, writer_core: int) -> None:
        """Break other cores' reservations overlapping [address, address+size)."""
        doomed = [core for core, marked in self._marks.items()
                  if core != writer_core and address <= marked < address + size]
        for core in doomed:
            del self._marks[core]

    # -- snapshot support ------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {"marks": {str(core): address for core, address
                          in sorted(self._marks.items())}}

    def restore_state(self, state: dict) -> None:
        self._marks = {int(core): address for core, address
                       in state["marks"].items()}


class _Exit(Exception):
    """Internal control-flow signal carrying a pending ExitReason."""

    def __init__(self, reason: ExitReason, mmio: Optional[MmioRequest] = None,
                 halt_code: int = 0, message: str = ""):
        self.reason = reason
        self.mmio = mmio
        self.halt_code = halt_code
        self.message = message
        super().__init__(message)


class Interpreter:
    """One core's instruction-accurate execution engine."""

    def __init__(self, state: CpuState, memory: GuestMemoryMap,
                 monitor: Optional[GlobalMonitor] = None, tlb_capacity: int = 512):
        self.state = state
        self.memory = memory
        self.monitor = monitor or GlobalMonitor()
        self.mmu = Mmu(state, memory.read, tlb_capacity)
        self.breakpoints: Set[int] = set()
        #: opcodes the (virtual) host CPU cannot execute natively; running
        #: one raises an EMULATION exit so the VP can emulate it (§VI).
        self.unsupported_ops: Set[Op] = set()
        self.irq_line = False
        self._pending_mmio: Optional[MmioRequest] = None
        self._decode_cache: Dict[int, Tuple[int, Instruction]] = {}
        self._skip_breakpoint_pc: Optional[int] = None
        self._fault_streak = 0
        # Event counters (monotonic; cost models sample deltas).
        self.memory_ops = 0
        self.blocks_entered = 0
        self.new_blocks = 0
        self.exceptions = 0
        self._known_blocks: Set[int] = set()
        self._block_start = True

    @property
    def pc(self) -> int:
        return self.state.pc

    # -- debug interface (KVM_SET_GUEST_DEBUG analogue) -------------------------
    def set_breakpoint(self, address: int) -> None:
        self.breakpoints.add(address)

    def clear_breakpoint(self, address: int) -> None:
        self.breakpoints.discard(address)

    # -- interrupt line ----------------------------------------------------------
    def set_irq(self, level: bool) -> None:
        self.irq_line = bool(level)

    # -- stats --------------------------------------------------------------------
    def sample_stats(self) -> RunStats:
        return RunStats(
            instructions=self.state.instret,
            memory_ops=self.memory_ops,
            blocks_entered=self.blocks_entered,
            blocks_translated=self.new_blocks,
            tlb_misses=self.mmu.tlb.misses,
            exceptions=self.exceptions,
        )

    # -- snapshot support ---------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Full serializable executor state (repro.snapshot).

        Everything that influences future behaviour or reported statistics
        is captured, including the TLB contents (dropping them would change
        post-resume miss counts and thus DBT cost attribution).  The decode
        cache is *not* captured: every hit re-validates the cached word
        against memory, so a cold cache provably rebuilds to identical
        decisions.  Sets are emitted sorted for deterministic bytes.
        """
        request = self._pending_mmio
        return {
            "type": "interpreter",
            "cpu": self.state.snapshot(),
            "exclusive_addr": self.state.exclusive_addr,
            "exclusive_valid": self.state.exclusive_valid,
            "halted": self.state.halted,
            "breakpoints": sorted(self.breakpoints),
            "unsupported_ops": sorted(op.value for op in self.unsupported_ops),
            "irq_line": self.irq_line,
            "pending_mmio": None if request is None else {
                "address": request.address,
                "size": request.size,
                "is_write": request.is_write,
                "data": None if request.data is None else request.data.hex(),
                "register": request.register,
            },
            "skip_breakpoint_pc": self._skip_breakpoint_pc,
            "fault_streak": self._fault_streak,
            "memory_ops": self.memory_ops,
            "blocks_entered": self.blocks_entered,
            "new_blocks": self.new_blocks,
            "exceptions": self.exceptions,
            "known_blocks": sorted(self._known_blocks),
            "block_start": self._block_start,
            "tlb": {
                "entries": [[vpage, el, ppage, flags] for (vpage, el), (ppage, flags)
                            in sorted(self.mmu.tlb._entries.items())],
                "hits": self.mmu.tlb.hits,
                "misses": self.mmu.tlb.misses,
            },
            "mmu_walks": self.mmu.walks,
        }

    def restore_state(self, state: dict) -> None:
        from ..arch.isa import Op as _Op
        self.state.restore(state["cpu"])
        self.state.exclusive_addr = state["exclusive_addr"]
        self.state.exclusive_valid = bool(state["exclusive_valid"])
        self.state.halted = bool(state["halted"])
        self.breakpoints = set(state["breakpoints"])
        self.unsupported_ops = {_Op(value) for value in state["unsupported_ops"]}
        self.irq_line = bool(state["irq_line"])
        pending = state["pending_mmio"]
        self._pending_mmio = None if pending is None else MmioRequest(
            pending["address"], pending["size"], pending["is_write"],
            None if pending["data"] is None else bytes.fromhex(pending["data"]),
            pending["register"],
        )
        self._skip_breakpoint_pc = state["skip_breakpoint_pc"]
        self._fault_streak = state["fault_streak"]
        self.memory_ops = state["memory_ops"]
        self.blocks_entered = state["blocks_entered"]
        self.new_blocks = state["new_blocks"]
        self.exceptions = state["exceptions"]
        self._known_blocks = set(state["known_blocks"])
        self._block_start = bool(state["block_start"])
        self._decode_cache.clear()
        tlb = self.mmu.tlb
        tlb._entries = {(vpage, el): (ppage, flags)
                        for vpage, el, ppage, flags in state["tlb"]["entries"]}
        tlb.hits = state["tlb"]["hits"]
        tlb.misses = state["tlb"]["misses"]
        self.mmu.walks = state["mmu_walks"]

    # -- main run loop ---------------------------------------------------------------
    def run(self, max_instructions: int) -> ExitInfo:
        """Execute until budget exhaustion or an exit event (KVM_RUN analogue)."""
        if self._pending_mmio is not None:
            raise RuntimeError("MMIO in flight; call complete_mmio() before run()")
        state = self.state
        if state.halted:
            return ExitInfo(ExitReason.HALT, 0, state.pc)
        executed = 0
        while executed < max_instructions:
            # Interrupts are delivered between instructions — but not while
            # stepping over a just-hit breakpoint: the stepped instruction
            # (e.g. the annotated WFI) retires first, so the IRQ's return
            # address lands *after* it, as on real hardware.
            if (self.irq_line and not state.irqs_masked
                    and state.pc != self._skip_breakpoint_pc):
                take_irq(state, return_pc=state.pc)
                self.exceptions += 1
                self._block_start = True
            pc = state.pc
            if pc in self.breakpoints and pc != self._skip_breakpoint_pc:
                self._skip_breakpoint_pc = pc
                return ExitInfo(ExitReason.BREAKPOINT, executed, pc)
            try:
                inst = self._fetch(pc)
                if inst.op in self.unsupported_ops:
                    # The host CPU traps this instruction (illegal-opcode
                    # exit); the hypervisor's user space must emulate it.
                    return ExitInfo(ExitReason.EMULATION, executed, pc)
                if self._block_start:
                    self.blocks_entered += 1
                    if pc not in self._known_blocks:
                        self._known_blocks.add(pc)
                        self.new_blocks += 1
                    self._block_start = False
                self._exec(inst, pc)
            except GuestFault as fault:
                try:
                    self._deliver_fault(fault, pc)
                except _ExitErrorLoop as loop:
                    return ExitInfo(ExitReason.ERROR, executed, pc, message=str(loop))
                continue
            except _Exit as exit_signal:
                if exit_signal.reason is ExitReason.MMIO:
                    self._pending_mmio = exit_signal.mmio
                    return ExitInfo(ExitReason.MMIO, executed, pc, mmio=exit_signal.mmio)
                if exit_signal.reason is ExitReason.HALT:
                    state.halted = True
                    executed += 1
                    state.instret += 1
                    return ExitInfo(ExitReason.HALT, executed, state.pc,
                                    halt_code=exit_signal.halt_code)
                if exit_signal.reason is ExitReason.WFI:
                    executed += 1
                    state.instret += 1
                    return ExitInfo(ExitReason.WFI, executed, state.pc)
                return ExitInfo(exit_signal.reason, executed, state.pc,
                                message=exit_signal.message)
            if pc == self._skip_breakpoint_pc:
                self._skip_breakpoint_pc = None
            self._fault_streak = 0
            executed += 1
            state.instret += 1
            if inst.op in BLOCK_TERMINATORS:
                self._block_start = True
        return ExitInfo(ExitReason.BUDGET, executed, state.pc)

    def emulate_one(self) -> ExitInfo:
        """Execute exactly one instruction, ignoring ``unsupported_ops``.

        This is the VP-side software emulation path for instructions the
        host cannot run natively: the hypervisor's user space performs the
        architectural effect and resumes the guest after it (§VI).
        """
        if self._pending_mmio is not None:
            raise RuntimeError("MMIO in flight; complete it before emulating")
        state = self.state
        pc = state.pc
        try:
            inst = self._fetch(pc)
            self._exec(inst, pc)
        except GuestFault as fault:
            self._deliver_fault(fault, pc)
            return ExitInfo(ExitReason.BUDGET, 0, state.pc)
        except _Exit as exit_signal:
            if exit_signal.reason is ExitReason.MMIO:
                self._pending_mmio = exit_signal.mmio
                return ExitInfo(ExitReason.MMIO, 0, pc, mmio=exit_signal.mmio)
            if exit_signal.reason is ExitReason.HALT:
                state.halted = True
            state.instret += 1
            return ExitInfo(exit_signal.reason, 1, state.pc,
                            halt_code=exit_signal.halt_code)
        state.instret += 1
        return ExitInfo(ExitReason.BUDGET, 1, state.pc)

    def complete_mmio(self, read_data: Optional[bytes] = None) -> None:
        """Finish the in-flight MMIO access and retire its instruction."""
        request = self._pending_mmio
        if request is None:
            raise RuntimeError("no MMIO in flight")
        state = self.state
        if not request.is_write:
            if read_data is None or len(read_data) != request.size:
                raise ValueError(
                    f"MMIO read completion wants {request.size} bytes, "
                    f"got {None if read_data is None else len(read_data)}"
                )
            state.write_reg(request.register, int.from_bytes(read_data, "little"))
        state.pc = (state.pc + 4) & MASK64
        state.instret += 1
        self._pending_mmio = None
        if state.pc != self._skip_breakpoint_pc:
            self._skip_breakpoint_pc = None

    @property
    def mmio_pending(self) -> bool:
        return self._pending_mmio is not None

    # -- fault delivery -----------------------------------------------------------------
    def _deliver_fault(self, fault: GuestFault, pc: int) -> None:
        self.exceptions += 1
        self._fault_streak += 1
        self._block_start = True
        if self._fault_streak > 4:
            raise _ExitErrorLoop(pc, fault)
        return_pc = pc + 4 if fault.ec in (ExceptionClass.SVC, ExceptionClass.BRK) else pc
        take_sync_exception(self.state, fault.ec, fault.iss, fault.fault_address,
                            return_pc=return_pc)

    # -- fetch ------------------------------------------------------------------------
    def _fetch(self, pc: int) -> Instruction:
        pa = self.mmu.translate(pc, fetch=True)
        if not self.memory.is_ram(pa, 4):
            raise GuestFault(ExceptionClass.INSTRUCTION_ABORT, iss=0x10, fault_address=pc,
                             message=f"instruction fetch from MMIO at 0x{pc:x}")
        word = int.from_bytes(self.memory.read(pa, 4), "little")
        cached = self._decode_cache.get(pa)
        if cached is not None and cached[0] == word:
            return cached[1]
        try:
            inst = decode(word)
        except DecodeError:
            raise GuestFault(ExceptionClass.UNKNOWN, fault_address=pc,
                             message=f"undecodable word {word:#010x} at 0x{pc:x}") from None
        self._decode_cache[pa] = (word, inst)
        return inst

    # -- data memory ----------------------------------------------------------------------
    def _load(self, va: int, size: int, register: int) -> int:
        self.memory_ops += 1
        pa = self.mmu.translate(va, write=False)
        if self.memory.is_ram(pa, size):
            return int.from_bytes(self.memory.read(pa, size), "little")
        raise _Exit(ExitReason.MMIO,
                    mmio=MmioRequest(pa, size, False, None, register))

    def _store(self, va: int, size: int, value: int) -> None:
        self.memory_ops += 1
        pa = self.mmu.translate(va, write=True)
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if self.memory.is_ram(pa, size):
            self.memory.write(pa, data)
            self.monitor.on_store(pa, size, self.state.core_id)
            return
        raise _Exit(ExitReason.MMIO,
                    mmio=MmioRequest(pa, size, True, data, 0))

    # -- flags ---------------------------------------------------------------------------------
    def _set_flags_sub(self, a: int, b: int) -> None:
        result = (a - b) & MASK64
        signed_a = a - (1 << 64) if a >> 63 else a
        signed_b = b - (1 << 64) if b >> 63 else b
        signed_r = signed_a - signed_b
        self.state.set_nzcv(
            n=bool(result >> 63),
            z=result == 0,
            c=a >= b,
            v=not (-(1 << 63) <= signed_r < (1 << 63)),
        )

    def _cond_holds(self, cond: Cond) -> bool:
        s = self.state
        if cond is Cond.EQ:
            return s.flag_z
        if cond is Cond.NE:
            return not s.flag_z
        if cond is Cond.HS:
            return s.flag_c
        if cond is Cond.LO:
            return not s.flag_c
        if cond is Cond.MI:
            return s.flag_n
        if cond is Cond.PL:
            return not s.flag_n
        if cond is Cond.VS:
            return s.flag_v
        if cond is Cond.VC:
            return not s.flag_v
        if cond is Cond.HI:
            return s.flag_c and not s.flag_z
        if cond is Cond.LS:
            return not s.flag_c or s.flag_z
        if cond is Cond.GE:
            return s.flag_n == s.flag_v
        if cond is Cond.LT:
            return s.flag_n != s.flag_v
        if cond is Cond.GT:
            return not s.flag_z and s.flag_n == s.flag_v
        if cond is Cond.LE:
            return s.flag_z or s.flag_n != s.flag_v
        return True  # AL

    # -- execute -----------------------------------------------------------------------------------
    def _exec(self, inst: Instruction, pc: int) -> None:
        state = self.state
        regs = state.regs
        op = inst.op
        next_pc = (pc + 4) & MASK64

        if op is Op.NOP or op is Op.DMB or op is Op.YIELD:
            pass
        elif op is Op.MOVZ:
            regs[inst.rd] = (inst.imm << (16 * inst.rm)) & MASK64
        elif op is Op.MOVK:
            shift = 16 * inst.rm
            regs[inst.rd] = (regs[inst.rd] & ~(0xFFFF << shift) | (inst.imm << shift)) & MASK64
        elif op is Op.ADDI:
            regs[inst.rd] = (regs[inst.rn] + inst.imm) & MASK64
        elif op is Op.SUBI:
            regs[inst.rd] = (regs[inst.rn] - inst.imm) & MASK64
        elif op is Op.ADD:
            regs[inst.rd] = (regs[inst.rn] + regs[inst.rm]) & MASK64
        elif op is Op.SUB:
            regs[inst.rd] = (regs[inst.rn] - regs[inst.rm]) & MASK64
        elif op is Op.MUL:
            regs[inst.rd] = (regs[inst.rn] * regs[inst.rm]) & MASK64
        elif op is Op.UDIV:
            divisor = regs[inst.rm]
            regs[inst.rd] = 0 if divisor == 0 else regs[inst.rn] // divisor
        elif op is Op.UREM:
            divisor = regs[inst.rm]
            regs[inst.rd] = regs[inst.rn] if divisor == 0 else regs[inst.rn] % divisor
        elif op is Op.AND:
            regs[inst.rd] = regs[inst.rn] & regs[inst.rm]
        elif op is Op.ORR:
            regs[inst.rd] = regs[inst.rn] | regs[inst.rm]
        elif op is Op.EOR:
            regs[inst.rd] = regs[inst.rn] ^ regs[inst.rm]
        elif op is Op.ANDI:
            regs[inst.rd] = regs[inst.rn] & inst.imm
        elif op is Op.ORRI:
            regs[inst.rd] = regs[inst.rn] | inst.imm
        elif op is Op.EORI:
            regs[inst.rd] = regs[inst.rn] ^ inst.imm
        elif op is Op.LSLI:
            regs[inst.rd] = (regs[inst.rn] << inst.imm) & MASK64
        elif op is Op.LSRI:
            regs[inst.rd] = regs[inst.rn] >> inst.imm
        elif op is Op.ASRI:
            value = regs[inst.rn]
            if value >> 63:
                value -= 1 << 64
            regs[inst.rd] = (value >> inst.imm) & MASK64
        elif op is Op.CMP:
            self._set_flags_sub(regs[inst.rn], regs[inst.rm])
        elif op is Op.CMPI:
            self._set_flags_sub(regs[inst.rn], inst.imm)
        elif op is Op.MOV:
            regs[inst.rd] = regs[inst.rn]
        elif op in _SIZE:
            size = _SIZE[op]
            va = (regs[inst.rn] + inst.imm) & MASK64
            if op in (Op.LDR, Op.LDRW, Op.LDRB):
                regs[inst.rd] = self._load(va, size, inst.rd)
            else:
                self._store(va, size, regs[inst.rd])
        elif op is Op.LDXR:
            va = regs[inst.rn] & MASK64
            self.memory_ops += 1
            pa = self.mmu.translate(va, write=False)
            if not self.memory.is_ram(pa, 8):
                raise GuestFault(ExceptionClass.DATA_ABORT, iss=0x35, fault_address=va,
                                 message=f"exclusive load from MMIO at 0x{va:x}")
            regs[inst.rd] = int.from_bytes(self.memory.read(pa, 8), "little")
            self.monitor.mark(state.core_id, pa)
            state.set_exclusive(pa)
        elif op is Op.STXR:
            va = regs[inst.rn] & MASK64
            self.memory_ops += 1
            pa = self.mmu.translate(va, write=True)
            if not self.memory.is_ram(pa, 8):
                raise GuestFault(ExceptionClass.DATA_ABORT, iss=0x35, fault_address=va,
                                 message=f"exclusive store to MMIO at 0x{va:x}")
            if state.check_exclusive(pa) and self.monitor.check(state.core_id, pa):
                self.memory.write(pa, regs[inst.rm].to_bytes(8, "little"))
                self.monitor.on_store(pa, 8, state.core_id)
                regs[inst.rd] = 0
            else:
                regs[inst.rd] = 1
            state.clear_exclusive()
            self.monitor.clear(state.core_id)
        elif op is Op.B:
            next_pc = (pc + 4 * inst.imm) & MASK64
        elif op is Op.BL:
            regs[30] = next_pc
            next_pc = (pc + 4 * inst.imm) & MASK64
        elif op is Op.BCOND:
            if self._cond_holds(inst.cond):
                next_pc = (pc + 4 * inst.imm) & MASK64
        elif op is Op.CBZ:
            if regs[inst.rd] == 0:
                next_pc = (pc + 4 * inst.imm) & MASK64
        elif op is Op.CBNZ:
            if regs[inst.rd] != 0:
                next_pc = (pc + 4 * inst.imm) & MASK64
        elif op is Op.BR:
            next_pc = regs[inst.rn]
        elif op is Op.RET:
            next_pc = regs[inst.rn]
        elif op is Op.ADR:
            regs[inst.rd] = (pc + inst.imm) & MASK64
        elif op is Op.SVC:
            raise GuestFault(ExceptionClass.SVC, iss=inst.imm,
                             message=f"svc #{inst.imm}")
        elif op is Op.BRK:
            raise GuestFault(ExceptionClass.BRK, iss=inst.imm,
                             message=f"brk #{inst.imm}")
        elif op is Op.UDF:
            raise GuestFault(ExceptionClass.UNKNOWN, fault_address=pc,
                             message=f"undefined instruction at 0x{pc:x}")
        elif op is Op.ERET:
            do_eret(state)
            return
        elif op is Op.MRS:
            self._check_sysreg_access(inst.imm, pc)
            if inst.imm == SysReg.CNTVCT_EL0:
                regs[inst.rd] = state.instret & MASK64
            else:
                regs[inst.rd] = state.read_sysreg(inst.imm)
        elif op is Op.MSR:
            self._check_sysreg_access(inst.imm, pc)
            state.write_sysreg(inst.imm, regs[inst.rn])
            if inst.imm in (SysReg.SCTLR_EL1, SysReg.TTBR0_EL1):
                self.mmu.flush_tlb()
                self._decode_cache.clear()
        elif op is Op.MSRI:
            if inst.rm:  # DAIFSet
                state.daif |= inst.imm
            else:        # DAIFClr
                state.daif &= ~inst.imm
        elif op is Op.WFI:
            if state.el == 0:
                # Linux traps EL0 WFI; treat as NOP for user space here.
                pass
            elif self.irq_line:
                pass  # pending interrupt: WFI falls through immediately
            else:
                state.pc = next_pc
                raise _Exit(ExitReason.WFI)
        elif op is Op.HLT:
            state.pc = next_pc
            raise _Exit(ExitReason.HALT, halt_code=inst.imm)
        else:  # pragma: no cover - decode() can't produce other ops
            raise GuestFault(ExceptionClass.UNKNOWN, fault_address=pc,
                             message=f"unimplemented opcode {op!r}")
        state.pc = next_pc

    def _check_sysreg_access(self, reg: int, pc: int) -> None:
        if self.state.el == 0 and reg not in _EL0_SYSREGS:
            raise GuestFault(ExceptionClass.UNKNOWN, fault_address=pc,
                             message=f"EL0 access to system register {reg:#x}")


class _ExitErrorLoop(Exception):
    """Raised when fault delivery itself keeps faulting (guest is wedged)."""

    def __init__(self, pc: int, fault: GuestFault):
        self.pc = pc
        self.fault = fault
        super().__init__(f"fault loop at pc=0x{pc:x}: {fault}")
