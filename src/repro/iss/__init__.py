"""Guest execution backends: the functional A64-lite interpreter, the DBT
cost model (AVP64 baseline), and the phase-program executor used for
paper-scale workloads."""

from .dbt import DbtCostModel
from .executor import (
    ExitInfo,
    ExitReason,
    GuestMemoryMap,
    MemorySlot,
    MmioRequest,
    RunStats,
)
from .interpreter import GlobalMonitor, Interpreter
from .phase import (
    AtomicAdd,
    Compute,
    Halt,
    IrqProtocol,
    Mmio,
    PhaseContext,
    PhaseExecutor,
    SpinUntil,
    StoreFlag,
    Wfi,
    wfi_wait,
)

__all__ = [
    "AtomicAdd",
    "Compute",
    "DbtCostModel",
    "ExitInfo",
    "ExitReason",
    "GlobalMonitor",
    "GuestMemoryMap",
    "Halt",
    "Interpreter",
    "IrqProtocol",
    "MemorySlot",
    "Mmio",
    "MmioRequest",
    "PhaseContext",
    "PhaseExecutor",
    "RunStats",
    "SpinUntil",
    "StoreFlag",
    "Wfi",
    "wfi_wait",
]
