"""Phase programs: abstract workload execution at paper scale.

Interpreting billions of guest instructions in Python is impossible, but the
paper's mechanisms (quantum budgets, watchdog kicks, MMIO exits, WFI
annotations, cross-core handshakes) only react to *events*, not to
individual ALU results.  A *phase program* describes a workload as the
sequence of events one core produces:

* :class:`Compute`   — N instructions with a static-block/memory profile,
* :class:`Mmio`      — one device access (a real exit + TLM transaction),
* :class:`Wfi`       — enter the idle loop at the annotated ``WFI`` address,
* :class:`SpinUntil` — busy-wait on a guest-RAM flag (spinlocks, barriers),
* :class:`StoreFlag` / :class:`AtomicAdd` — shared-memory writes,
* :class:`Halt`      — terminate the core.

Programs are Python generators, so control flow (loops, handshakes,
data-dependent branches on MMIO read values) is ordinary code.  A yielded
``Mmio`` read evaluates to the bytes the device returned::

    def program(ctx):
        yield Compute(1_000_000, key="init")
        status = yield Mmio(UART_FR, 4, is_write=False)
        ...

:class:`PhaseExecutor` runs these programs behind the exact same executor
interface as the functional interpreter, so both CPU models and the whole
platform stack are exercised unmodified.  Interrupt delivery follows the
GIC protocol: when the IRQ line rises (and the core is not already in a
handler) the executor interleaves an IAR read, handler work, device acks
and an EOIR write — all real MMIO exits handled by the VP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Sequence, Set, Union

from .executor import ExitInfo, ExitReason, GuestMemoryMap, MmioRequest, RunStats


# --------------------------------------------------------------------------
# Phase vocabulary
# --------------------------------------------------------------------------

@dataclass
class Compute:
    """Execute ``instructions`` guest instructions of straight-line work.

    ``key`` identifies the static code executed: the first time a key is
    seen, its ``static_blocks`` are counted as newly translated (DBT cost);
    re-executions hit the translation cache.  ``mem_fraction`` of the
    instructions are loads/stores and ``tlb_miss_rate`` of *those* miss the
    software TLB (ISS cost model inputs).
    """

    instructions: int
    key: str = ""
    static_blocks: int = 64
    avg_block_len: int = 12
    mem_fraction: float = 0.25
    tlb_miss_rate: float = 0.0


@dataclass
class Mmio:
    """One device access at guest-physical ``address``."""

    address: int
    size: int = 4
    is_write: bool = True
    value: int = 0


@dataclass
class Wfi:
    """Execute the idle loop's WFI instruction."""


@dataclass
class SpinUntil:
    """Busy-wait until the 8-byte RAM word at ``address`` reaches ``value``.

    ``ge=False`` waits for equality; ``ge=True`` waits for >=, which is what
    generation-counter barriers need (later arrivals may overshoot the
    value a spinner is waiting for).
    """

    address: int
    value: int
    check_instructions: int = 64
    mem_fraction: float = 0.5
    ge: bool = False


@dataclass
class StoreFlag:
    """Store an 8-byte value to guest RAM (release-store to a flag)."""

    address: int
    value: int
    instructions: int = 2


@dataclass
class AtomicAdd:
    """LDXR/STXR read-modify-write on an 8-byte RAM counter."""

    address: int
    delta: int
    instructions: int = 8


@dataclass
class Halt:
    code: int = 0


Phase = Union[Compute, Mmio, Wfi, SpinUntil, StoreFlag, AtomicAdd, Halt]
PhaseProgram = Callable[["PhaseContext"], Generator]


@dataclass
class IrqProtocol:
    """How a core services an interrupt (GICv2 handshake).

    ``iar_address``/``eoir_address`` are the core's GIC CPU-interface
    registers.  ``device_acks`` maps an interrupt id to the extra MMIO
    writes the driver performs to silence the device (e.g. a timer's
    interrupt-clear register).
    """

    iar_address: int
    eoir_address: int
    handler_instructions: int = 1500
    device_acks: Dict[int, Sequence[Mmio]] = field(default_factory=dict)


@dataclass
class PhaseContext:
    """Everything a phase program can see."""

    core_id: int
    memory: GuestMemoryMap
    wfi_pc: int = 0x1000
    code_base: int = 0x4000
    irq_protocol: Optional[IrqProtocol] = None
    shared: dict = field(default_factory=dict)
    #: repro.snapshot plumbing.  While the executor steps the program
    #: generator it journals every RAM access the *generator* makes (reads
    #: through these helpers decide its control flow); restore re-drives a
    #: fresh generator with ``_replay`` answering those reads from the
    #: journal, because guest RAM has already been restored to its final
    #: state and historical reads must see historical values.
    _journal: Optional[list] = field(default=None, repr=False)
    _replay: Optional[object] = field(default=None, repr=False)
    _in_generator: bool = field(default=False, repr=False)

    # -- RAM helpers for generator-side control flow ------------------------
    def read_u64(self, address: int) -> int:
        if self._replay is not None and self._in_generator:
            entry = self._replay.popleft() if self._replay else None
            if entry is None or entry[0] != "read" or entry[1] != address:
                raise RuntimeError(
                    f"phase replay diverged: expected journaled read of "
                    f"0x{address:x}, journal has {entry!r}"
                )
            return entry[2]
        value = int.from_bytes(self.memory.read(address, 8), "little")
        if self._journal is not None and self._in_generator:
            self._journal.append(["read", address, value])
        return value

    def write_u64(self, address: int, value: int) -> None:
        if self._replay is not None and self._in_generator:
            entry = self._replay.popleft() if self._replay else None
            if entry is None or entry[0] != "write" or entry[1] != address:
                raise RuntimeError(
                    f"phase replay diverged: expected journaled write of "
                    f"0x{address:x}, journal has {entry!r}"
                )
            return   # RAM already holds the final state; do not re-apply
        if self._journal is not None and self._in_generator:
            self._journal.append(["write", address, value & (2**64 - 1)])
        self.memory.write(address, (value & (2**64 - 1)).to_bytes(8, "little"))

    def flag_set(self, address: int, expected: int = 1, ge: bool = False) -> bool:
        value = self.read_u64(address)
        return value >= expected if ge else value == expected


def wfi_wait(ctx: PhaseContext, address: int, expected: int = 1, ge: bool = False):
    """Idle-loop wait: WFI until a RAM flag reaches ``expected``.

    This is how both the booting core and the secondaries wait in the
    synthetic Linux: each unexpected wakeup (timer tick, stray SGI)
    re-checks the flag and re-enters WFI, exactly like a kernel thread
    sleeping on a completion.
    """
    while not ctx.flag_set(address, expected, ge):
        yield Wfi()


# --------------------------------------------------------------------------
# Executor
# --------------------------------------------------------------------------

class _HandlerState:
    """Progress of an in-flight interrupt service sequence."""

    def __init__(self, protocol: IrqProtocol):
        self.protocol = protocol
        self.stage = "iar"          # iar -> work -> acks -> eoir -> done
        self.ack_id = 0
        self.work_left = protocol.handler_instructions
        self.acks: List[Mmio] = []


class PhaseExecutor:
    """Runs a phase program behind the GuestExecutor interface."""

    def __init__(self, program: PhaseProgram, ctx: PhaseContext):
        self.ctx = ctx
        self._generator = program(ctx)
        #: input journal for repro.snapshot: one ["send", value] entry per
        #: generator advance, interleaved with the ["read"/"write", ...]
        #: entries the generator produced while handling it.  The journal
        #: plus the program function fully determine the generator's state.
        self._journal: list = []
        ctx._journal = self._journal
        self._current: Optional[Phase] = None
        self._compute_left = 0
        self._send_value = None
        self._finished = False
        self._halt_code = 0
        self.irq_line = False
        self.breakpoints: Set[int] = set()
        self._skip_breakpoint_once = False
        self._handler: Optional[_HandlerState] = None
        self._wfi_completed = False
        self._pending_mmio: Optional[MmioRequest] = None
        self._pending_mmio_sink: Optional[str] = None   # "program" | "iar" | "ack" | "eoir"
        self.pc = ctx.code_base
        # Stats
        self.instructions = 0
        self.memory_ops = 0
        self.blocks_entered = 0
        self.new_blocks = 0
        self.tlb_misses = 0
        self.exceptions = 0
        self.irqs_taken = 0
        self._translated_keys: Set[str] = set()
        self._anonymous_keys = 0

    # -- GuestExecutor interface ----------------------------------------------
    def set_irq(self, level: bool) -> None:
        self.irq_line = bool(level)

    def set_breakpoint(self, address: int) -> None:
        self.breakpoints.add(address)

    def clear_breakpoint(self, address: int) -> None:
        self.breakpoints.discard(address)

    def sample_stats(self) -> RunStats:
        return RunStats(
            instructions=self.instructions,
            memory_ops=self.memory_ops,
            blocks_entered=self.blocks_entered,
            blocks_translated=self.new_blocks,
            tlb_misses=self.tlb_misses,
            exceptions=self.exceptions,
        )

    @property
    def mmio_pending(self) -> bool:
        return self._pending_mmio is not None

    # -- snapshot support ----------------------------------------------------
    @staticmethod
    def _mmio_to_dict(request: Optional[MmioRequest]) -> Optional[dict]:
        if request is None:
            return None
        return {
            "address": request.address,
            "size": request.size,
            "is_write": request.is_write,
            "data": None if request.data is None else request.data.hex(),
            "register": request.register,
        }

    @staticmethod
    def _mmio_from_dict(data: Optional[dict]) -> Optional[MmioRequest]:
        if data is None:
            return None
        return MmioRequest(
            data["address"], data["size"], data["is_write"],
            None if data["data"] is None else bytes.fromhex(data["data"]),
            data["register"],
        )

    def snapshot_state(self) -> dict:
        """Serializable executor state (repro.snapshot).

        The generator itself cannot be pickled; instead the input journal
        is stored and :meth:`restore_state` re-drives a *fresh* generator
        of the same program through it.  All scalar progress state is then
        installed as data (the replay recomputes counters, but the live
        values are authoritative).  ``ctx.shared`` must be JSON-encodable.
        """
        handler = self._handler
        return {
            "type": "phase",
            "journal": [list(entry) for entry in self._journal],
            "shared": sorted(self.ctx.shared.items(),
                             key=lambda item: repr(item[0])),
            "compute_left": self._compute_left,
            "send_value": self._send_value,
            "finished": self._finished,
            "halt_code": self._halt_code,
            "irq_line": self.irq_line,
            "breakpoints": sorted(self.breakpoints),
            "skip_breakpoint_once": self._skip_breakpoint_once,
            "handler": None if handler is None else {
                "stage": handler.stage,
                "ack_id": handler.ack_id,
                "work_left": handler.work_left,
                "acks": [{"address": ack.address, "size": ack.size,
                          "is_write": ack.is_write, "value": ack.value}
                         for ack in handler.acks],
            },
            "wfi_completed": self._wfi_completed,
            "pending_mmio": self._mmio_to_dict(self._pending_mmio),
            "pending_mmio_sink": self._pending_mmio_sink,
            "pc": self.pc,
            "instructions": self.instructions,
            "memory_ops": self.memory_ops,
            "blocks_entered": self.blocks_entered,
            "new_blocks": self.new_blocks,
            "tlb_misses": self.tlb_misses,
            "exceptions": self.exceptions,
            "irqs_taken": self.irqs_taken,
            "translated_keys": sorted(self._translated_keys),
            "anonymous_keys": self._anonymous_keys,
        }

    def restore_state(self, state: dict) -> None:
        """Replay the journal into this (freshly constructed) executor.

        Must be called on an executor whose generator has never been
        advanced and whose program function matches the snapshotted one;
        divergence between journal and program raises RuntimeError.
        """
        from collections import deque
        if state["type"] != "phase":
            raise RuntimeError(f"executor type mismatch: {state['type']!r}")
        replay = deque(tuple(entry) for entry in state["journal"])
        self.ctx._replay = replay
        self.ctx._journal = None
        try:
            while replay:
                entry = replay.popleft()
                if entry[0] != "send":
                    raise RuntimeError(
                        f"phase replay diverged: generator consumed fewer "
                        f"inputs than journaled (next: {entry!r})"
                    )
                self.ctx._in_generator = True
                try:
                    self._current = self._generator.send(entry[1])
                except StopIteration:
                    self._current = None
                finally:
                    self.ctx._in_generator = False
        finally:
            self.ctx._replay = None
        # Journal continues to grow from the full history so a snapshot of
        # a resumed run is itself restorable.
        self._journal = [list(entry) for entry in state["journal"]]
        self.ctx._journal = self._journal
        self.ctx.shared.clear()
        self.ctx.shared.update((key, value) for key, value in state["shared"])
        self._compute_left = state["compute_left"]
        self._send_value = state["send_value"]
        self._finished = bool(state["finished"])
        self._halt_code = state["halt_code"]
        self.irq_line = bool(state["irq_line"])
        self.breakpoints = set(state["breakpoints"])
        self._skip_breakpoint_once = bool(state["skip_breakpoint_once"])
        handler = state["handler"]
        if handler is None:
            self._handler = None
        else:
            assert self.ctx.irq_protocol is not None
            restored = _HandlerState(self.ctx.irq_protocol)
            restored.stage = handler["stage"]
            restored.ack_id = handler["ack_id"]
            restored.work_left = handler["work_left"]
            restored.acks = [Mmio(ack["address"], ack["size"], ack["is_write"],
                                  ack["value"]) for ack in handler["acks"]]
            self._handler = restored
        self._wfi_completed = bool(state["wfi_completed"])
        self._pending_mmio = self._mmio_from_dict(state["pending_mmio"])
        self._pending_mmio_sink = state["pending_mmio_sink"]
        self.pc = state["pc"]
        self.instructions = state["instructions"]
        self.memory_ops = state["memory_ops"]
        self.blocks_entered = state["blocks_entered"]
        self.new_blocks = state["new_blocks"]
        self.tlb_misses = state["tlb_misses"]
        self.exceptions = state["exceptions"]
        self.irqs_taken = state["irqs_taken"]
        self._translated_keys = set(state["translated_keys"])
        self._anonymous_keys = state["anonymous_keys"]

    def run(self, max_instructions: int) -> ExitInfo:
        if self._pending_mmio is not None:
            raise RuntimeError("MMIO in flight; call complete_mmio() first")
        if self._finished:
            return ExitInfo(ExitReason.HALT, 0, self.pc, halt_code=self._halt_code)
        executed = 0
        while executed < max_instructions:
            # Interrupt delivery takes priority over the program — except
            # over a not-yet-executed WFI, which architecturally falls
            # through *first* and only then takes the interrupt.
            if (self.irq_line and self._handler is None
                    and self.ctx.irq_protocol is not None
                    and not (isinstance(self._current, Wfi) and not self._wfi_completed)):
                self._handler = _HandlerState(self.ctx.irq_protocol)
                self.irqs_taken += 1
                self.exceptions += 1
            if self._handler is not None:
                result = self._handler_step(executed, max_instructions)
                if isinstance(result, ExitInfo):
                    return result
                executed = result
                continue
            phase = self._current_phase()
            if phase is None:
                self._finished = True
                return ExitInfo(ExitReason.HALT, executed, self.pc,
                                halt_code=self._halt_code)
            result = self._phase_step(phase, executed, max_instructions)
            if isinstance(result, ExitInfo):
                return result
            executed = result
        return ExitInfo(ExitReason.BUDGET, executed, self.pc)

    def complete_mmio(self, read_data: Optional[bytes] = None) -> None:
        request = self._pending_mmio
        if request is None:
            raise RuntimeError("no MMIO in flight")
        sink = self._pending_mmio_sink
        self._pending_mmio = None
        self._pending_mmio_sink = None
        self.instructions += 1
        value = int.from_bytes(read_data, "little") if read_data is not None else None
        if sink == "program":
            self._send_value = value
            self._advance_program()
        elif sink == "iar":
            handler = self._handler
            if handler is None:
                raise RuntimeError("IAR completion without active handler")
            handler.ack_id = value if value is not None else 1023
            handler.stage = "work"
            handler.acks = list(handler.protocol.device_acks.get(handler.ack_id, ()))
        elif sink == "ack":
            handler = self._handler
            if handler is not None and not handler.acks:
                handler.stage = "eoir"
        elif sink == "eoir":
            self._handler = None
        else:  # pragma: no cover
            raise AssertionError(f"unknown MMIO sink {sink!r}")

    # -- internals ---------------------------------------------------------------
    def _current_phase(self) -> Optional[Phase]:
        if self._current is None:
            self._advance_program()
        return self._current

    def _advance_program(self) -> None:
        value, self._send_value = self._send_value, None
        if self.ctx._replay is None:
            self._journal.append(["send", value])
        self.ctx._in_generator = True
        try:
            self._current = self._generator.send(value)
        except StopIteration:
            self._current = None
            return
        finally:
            self.ctx._in_generator = False
        if isinstance(self._current, Compute):
            self._compute_left = self._current.instructions
            self._charge_translation(self._current)

    def _charge_translation(self, phase: Compute) -> None:
        key = phase.key
        if not key:
            self._anonymous_keys += 1
            key = f"__anon{self._anonymous_keys}"
        if key not in self._translated_keys:
            self._translated_keys.add(key)
            self.new_blocks += phase.static_blocks

    def _finish_phase(self) -> None:
        self._current = None

    def _phase_step(self, phase: Phase, executed: int, budget: int):
        """Process (part of) one phase; returns new ``executed`` or ExitInfo."""
        left = budget - executed
        if isinstance(phase, Compute):
            take = min(self._compute_left, left)
            self._account_compute(take, phase.mem_fraction, phase.tlb_miss_rate,
                                  phase.avg_block_len)
            executed += take
            self._compute_left -= take
            if self._compute_left <= 0:
                self._finish_phase()
                self._advance_program()
            return executed
        if isinstance(phase, Mmio):
            request = MmioRequest(phase.address, phase.size, phase.is_write,
                                  phase.value.to_bytes(phase.size, "little")
                                  if phase.is_write else None, 0)
            self._pending_mmio = request
            self._pending_mmio_sink = "program"
            self._finish_phase()
            self.memory_ops += 1
            return ExitInfo(ExitReason.MMIO, executed, self.pc, mmio=request)
        if isinstance(phase, Wfi):
            if self._wfi_completed:
                # Waking up after a WFI: only now advance the program, so
                # flag checks in wfi_wait() observe memory written by the
                # peer that raised the wake-up interrupt.
                self._wfi_completed = False
                self._finish_phase()
                self._advance_program()
                return executed
            self.pc = self.ctx.wfi_pc
            if self.pc in self.breakpoints and not self._skip_breakpoint_once:
                self._skip_breakpoint_once = True
                return ExitInfo(ExitReason.BREAKPOINT, executed, self.pc)
            self._skip_breakpoint_once = False
            self.instructions += 1
            executed += 1
            self._wfi_completed = True
            if self.irq_line:
                # Pending interrupt: WFI falls through immediately; the
                # handler runs next, and only after it does the idle loop
                # re-check its wake condition (program advance).
                return executed
            return ExitInfo(ExitReason.WFI, executed, self.pc)
        if isinstance(phase, SpinUntil):
            if self.ctx.flag_set(phase.address, phase.value, phase.ge):
                self._finish_phase()
                self._advance_program()
                return executed
            if self.irq_line and self.ctx.irq_protocol is not None:
                # Spin at least one poll iteration, then let the handler in.
                take = min(phase.check_instructions, budget - executed)
                self._account_compute(take, phase.mem_fraction, 0.0, 4)
                return executed + take
            # Guest RAM cannot change during one run() call (no other actor
            # executes), so an unset flag stays unset: burn the whole budget
            # in one accounting step instead of poll-sized chunks.
            take = budget - executed
            self._account_compute(take, phase.mem_fraction, 0.0, 4)
            return executed + take
        if isinstance(phase, StoreFlag):
            self.ctx.write_u64(phase.address, phase.value)
            self._account_compute(phase.instructions, 0.5, 0.0, 4)
            self._finish_phase()
            self._advance_program()
            return executed + phase.instructions
        if isinstance(phase, AtomicAdd):
            current = self.ctx.read_u64(phase.address)
            self.ctx.write_u64(phase.address, current + phase.delta)
            self._account_compute(phase.instructions, 0.6, 0.0, 4)
            self._finish_phase()
            self._advance_program()
            return executed + phase.instructions
        if isinstance(phase, Halt):
            self._finished = True
            self._halt_code = phase.code
            self.instructions += 1
            return ExitInfo(ExitReason.HALT, executed + 1, self.pc,
                            halt_code=phase.code)
        raise TypeError(f"phase program yielded a non-phase: {phase!r}")

    def _handler_step(self, executed: int, budget: int):
        handler = self._handler
        protocol = handler.protocol
        if handler.stage == "iar":
            request = MmioRequest(protocol.iar_address, 4, False, None, 0)
            self._pending_mmio = request
            self._pending_mmio_sink = "iar"
            self.memory_ops += 1
            return ExitInfo(ExitReason.MMIO, executed, self.pc, mmio=request)
        if handler.stage == "work":
            take = min(handler.work_left, budget - executed)
            self._account_compute(take, 0.3, 0.0, 10, key="__irq_handler")
            handler.work_left -= take
            executed += take
            if handler.work_left <= 0:
                handler.stage = "acks" if handler.acks else "eoir"
            return executed
        if handler.stage == "acks":
            ack = handler.acks.pop(0)
            request = MmioRequest(ack.address, ack.size, ack.is_write,
                                  ack.value.to_bytes(ack.size, "little")
                                  if ack.is_write else None, 0)
            self._pending_mmio = request
            self._pending_mmio_sink = "ack"
            if not handler.acks:
                pass  # stage advances when the ack completes
            self.memory_ops += 1
            return ExitInfo(ExitReason.MMIO, executed, self.pc, mmio=request)
        if handler.stage == "eoir":
            request = MmioRequest(protocol.eoir_address, 4, True,
                                  handler.ack_id.to_bytes(4, "little"), 0)
            self._pending_mmio = request
            self._pending_mmio_sink = "eoir"
            self.memory_ops += 1
            return ExitInfo(ExitReason.MMIO, executed, self.pc, mmio=request)
        raise AssertionError(f"bad handler stage {handler.stage!r}")  # pragma: no cover

    def _account_compute(self, instructions: int, mem_fraction: float,
                         tlb_miss_rate: float, avg_block_len: int,
                         key: Optional[str] = None) -> None:
        if instructions <= 0:
            return
        if key is not None and key not in self._translated_keys:
            self._translated_keys.add(key)
            self.new_blocks += 16
        self.instructions += instructions
        mem_ops = int(instructions * mem_fraction)
        self.memory_ops += mem_ops
        self.blocks_entered += max(1, instructions // max(1, avg_block_len))
        self.tlb_misses += int(mem_ops * tlb_miss_rate)
