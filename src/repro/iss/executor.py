"""Execution-backend interfaces shared by the ISS and the KVM model.

A *guest executor* runs target instructions until either an instruction
budget is exhausted or an event needs attention from the layer above
(an MMIO access, a WFI, a breakpoint hit, a halt).  The contract mirrors
``KVM_RUN``: the call returns an :class:`ExitInfo` describing why control
came back, the caller handles the event, then calls ``run`` again.

:class:`GuestMemoryMap` is the analogue of KVM's user memory slots: RAM
regions registered by the VP (obtained via TLM DMI) are directly accessible;
every other physical address is MMIO and causes an exit.
"""

from __future__ import annotations

import enum
from typing import List, NamedTuple, Optional, Tuple

from ..systemc.kernel import enter_shared_section


class ExitReason(enum.Enum):
    BUDGET = "budget"            # instruction budget exhausted
    MMIO = "mmio"                # guest touched a non-RAM physical address
    WFI = "wfi"                  # guest executed WFI with no pending IRQ
    BREAKPOINT = "breakpoint"    # guest-debug breakpoint hit
    HALT = "halt"                # guest executed HLT (simulation exit)
    SIGNAL = "signal"            # pending host signal (watchdog kick)
    ERROR = "error"              # unrecoverable guest error (double fault...)
    EMULATION = "emulation"      # instruction unsupported by the host CPU


class MmioRequest(NamedTuple):
    """An in-flight MMIO access awaiting completion by the VP."""

    address: int        # guest-physical address
    size: int           # access size in bytes
    is_write: bool
    data: Optional[bytes]   # write payload (None for reads)
    register: int       # destination register for reads
    sign: bool = False  # reserved for sign-extending loads


class ExitInfo(NamedTuple):
    reason: ExitReason
    instructions: int                  # executed during this run call
    pc: int                            # guest PC after the run
    mmio: Optional[MmioRequest] = None
    halt_code: int = 0
    message: str = ""


class RunStats(NamedTuple):
    """Microarchitectural event counts for one run (cost-model input)."""

    instructions: int = 0
    memory_ops: int = 0
    blocks_entered: int = 0
    blocks_translated: int = 0
    tlb_misses: int = 0
    exceptions: int = 0


class MemorySlot(NamedTuple):
    """One RAM window (KVM_SET_USER_MEMORY_REGION analogue)."""

    guest_base: int
    memory: memoryview     # writable view over the VP's RAM bytes

    @property
    def size(self) -> int:
        return len(self.memory)

    @property
    def guest_end(self) -> int:
        return self.guest_base + len(self.memory) - 1

    def contains(self, address: int, length: int = 1) -> bool:
        return self.guest_base <= address and address + length - 1 <= self.guest_end


class GuestMemoryMap:
    """Guest-physical address space: RAM slots + implicit MMIO elsewhere."""

    def __init__(self):
        self._slots: List[MemorySlot] = []

    def add_slot(self, guest_base: int, memory: memoryview) -> MemorySlot:
        slot = MemorySlot(guest_base, memory)
        for existing in self._slots:
            if slot.guest_base <= existing.guest_end and existing.guest_base <= slot.guest_end:
                raise ValueError(
                    f"memory slot [0x{slot.guest_base:x}, 0x{slot.guest_end:x}] overlaps "
                    f"[0x{existing.guest_base:x}, 0x{existing.guest_end:x}]"
                )
        self._slots.append(slot)
        return slot

    def remove_slot(self, guest_base: int) -> bool:
        for index, slot in enumerate(self._slots):
            if slot.guest_base == guest_base:
                del self._slots[index]
                return True
        return False

    def find(self, address: int, length: int = 1) -> Optional[MemorySlot]:
        for slot in self._slots:
            if slot.contains(address, length):
                return slot
        return None

    def is_ram(self, address: int, length: int = 1) -> bool:
        return self.find(address, length) is not None

    def read(self, address: int, length: int) -> bytes:
        # Guest RAM is shared by every core: inside a parallel simulate leg
        # this takes the lane-ordered commit token (no-op otherwise), so
        # cross-core flag handshakes observe exactly the serial order.
        enter_shared_section()
        slot = self.find(address, length)
        if slot is None:
            raise KeyError(f"physical read outside RAM: 0x{address:x}+{length}")
        offset = address - slot.guest_base
        return bytes(slot.memory[offset:offset + length])

    def write(self, address: int, data: bytes) -> None:
        enter_shared_section()
        slot = self.find(address, len(data))
        if slot is None:
            raise KeyError(f"physical write outside RAM: 0x{address:x}+{len(data)}")
        offset = address - slot.guest_base
        slot.memory[offset:offset + len(data)] = data

    def slots(self) -> Tuple[MemorySlot, ...]:
        return tuple(self._slots)

    def __len__(self) -> int:
        return len(self._slots)
