"""DBT-ISS host-cost model (the AVP64 baseline).

AVP64 wraps a QEMU-derived dynamic-binary-translation ISS: basic blocks of
target code are translated to host code on first execution and cached, so
steady-state dispatch is fast but cold code pays a large per-block
translation cost.  Loads and stores additionally pay software MMU
translation (TLB hit) or a full software page walk (TLB miss).

This module turns executor event counts (:class:`RunStats` deltas) into
modeled host nanoseconds.  The translation-amortization term is what makes
MiBench *small* variants so much slower on AVP64 than *large* ones
(§V-C.2) and therefore drives the 8×–165× speedup spread in Fig. 7.
"""

from __future__ import annotations

from typing import Optional

from ..host.params import DEFAULT_ISS_COSTS, IssCostParams
from .executor import RunStats


class DbtCostModel:
    """Accumulates modeled host time for a DBT-based ISS."""

    def __init__(self, params: Optional[IssCostParams] = None):
        self.params = params or DEFAULT_ISS_COSTS
        self._last = RunStats()
        self.total_ns = 0.0
        self.translation_ns = 0.0
        self.dispatch_ns = 0.0
        self.mmu_ns = 0.0

    def charge(self, stats: RunStats, mmio_exits: int = 0, wfi_exits: int = 0) -> float:
        """Bill the delta between ``stats`` and the last sample; returns ns."""
        params = self.params
        delta_inst = stats.instructions - self._last.instructions
        delta_blocks = stats.blocks_translated - self._last.blocks_translated
        delta_mem = stats.memory_ops - self._last.memory_ops
        delta_tlb = stats.tlb_misses - self._last.tlb_misses
        delta_exc = stats.exceptions - self._last.exceptions
        self._last = stats

        dispatch = delta_inst * params.dispatch_ns_per_inst
        translation = delta_blocks * params.translation_ns_per_block
        mmu = delta_mem * params.mem_extra_ns + delta_tlb * params.tlb_miss_ns
        events = (
            mmio_exits * params.mmio_ns
            + wfi_exits * params.wfi_ns
            + delta_exc * params.exception_ns
            + params.irq_check_ns
        )
        total = dispatch + translation + mmu + events
        self.dispatch_ns += dispatch
        self.translation_ns += translation
        self.mmu_ns += mmu
        self.total_ns += total
        return total
