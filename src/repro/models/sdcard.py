"""Virtual SD card.

A block device backed by an in-memory image, spoken to by the SDHCI host
controller model over a simplified SD command interface (the subset Linux's
mmc stack and our synthetic rootfs mount use).
"""

from __future__ import annotations

BLOCK_SIZE = 512

# SD commands the card understands.
CMD_GO_IDLE = 0           # CMD0
CMD_ALL_SEND_CID = 2      # CMD2
CMD_SEND_RELATIVE_ADDR = 3  # CMD3
CMD_SELECT_CARD = 7       # CMD7
CMD_SEND_IF_COND = 8      # CMD8
CMD_SEND_CSD = 9          # CMD9
CMD_READ_SINGLE = 17      # CMD17
CMD_WRITE_SINGLE = 24     # CMD24
ACMD_SD_SEND_OP_COND = 41  # ACMD41
CMD_APP = 55              # CMD55

OCR_READY = 0x8000_0000
OCR_CCS = 0x4000_0000     # high-capacity (block addressing)


class SdCardError(Exception):
    pass


class SdCard:
    """An SDHC card with a bytearray-backed image."""

    def __init__(self, capacity_blocks: int = 4096, rca: int = 0x1234):
        if capacity_blocks <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_blocks = capacity_blocks
        self.image = bytearray(capacity_blocks * BLOCK_SIZE)
        self.rca = rca
        self.state = "idle"          # idle -> ready -> ident -> standby -> transfer
        self.app_cmd = False
        self.num_reads = 0
        self.num_writes = 0

    # -- host-side image access -----------------------------------------------
    def load_image(self, data: bytes, offset: int = 0) -> None:
        if offset + len(data) > len(self.image):
            raise ValueError("image data exceeds card capacity")
        self.image[offset:offset + len(data)] = data

    def read_block(self, lba: int) -> bytes:
        self._check_lba(lba)
        self.num_reads += 1
        return bytes(self.image[lba * BLOCK_SIZE:(lba + 1) * BLOCK_SIZE])

    def write_block(self, lba: int, data: bytes) -> None:
        self._check_lba(lba)
        if len(data) != BLOCK_SIZE:
            raise SdCardError(f"block write needs {BLOCK_SIZE} bytes, got {len(data)}")
        self.num_writes += 1
        self.image[lba * BLOCK_SIZE:(lba + 1) * BLOCK_SIZE] = data

    def _check_lba(self, lba: int) -> None:
        if not 0 <= lba < self.capacity_blocks:
            raise SdCardError(f"LBA {lba} out of range (card has {self.capacity_blocks} blocks)")

    # -- snapshot support -------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable card state; the image is stored sparsely (non-zero
        blocks only, keyed by LBA) since cards are mostly blank."""
        blocks = {}
        zero = bytes(BLOCK_SIZE)
        for lba in range(self.capacity_blocks):
            raw = bytes(self.image[lba * BLOCK_SIZE:(lba + 1) * BLOCK_SIZE])
            if raw != zero:
                blocks[str(lba)] = raw.hex()
        return {
            "capacity_blocks": self.capacity_blocks,
            "rca": self.rca,
            "state": self.state,
            "app_cmd": self.app_cmd,
            "num_reads": self.num_reads,
            "num_writes": self.num_writes,
            "blocks": blocks,
        }

    def restore_state(self, state: dict) -> None:
        self.capacity_blocks = state["capacity_blocks"]
        self.rca = state["rca"]
        self.state = state["state"]
        self.app_cmd = bool(state["app_cmd"])
        self.num_reads = state["num_reads"]
        self.num_writes = state["num_writes"]
        self.image = bytearray(self.capacity_blocks * BLOCK_SIZE)
        for lba_str, raw in state["blocks"].items():
            lba = int(lba_str)
            self.image[lba * BLOCK_SIZE:(lba + 1) * BLOCK_SIZE] = bytes.fromhex(raw)

    # -- command interface (used by the SDHCI model) ------------------------------
    def execute(self, command: int, argument: int) -> int:
        """Process one SD command; returns the 32-bit R1/R3/R6-style response."""
        was_app = self.app_cmd
        self.app_cmd = False
        if command == CMD_GO_IDLE:
            self.state = "idle"
            return 0
        if command == CMD_SEND_IF_COND:
            # Echo back the check pattern + voltage accepted.
            return argument & 0xFFF
        if command == CMD_APP:
            self.app_cmd = True
            return 0x120
        if command == ACMD_SD_SEND_OP_COND and was_app:
            self.state = "ready"
            return OCR_READY | OCR_CCS
        if command == CMD_ALL_SEND_CID:
            self.state = "ident"
            return 0x00AA55FF          # truncated CID
        if command == CMD_SEND_RELATIVE_ADDR:
            self.state = "standby"
            return (self.rca << 16) | 0x0500
        if command == CMD_SELECT_CARD:
            if (argument >> 16) != self.rca:
                raise SdCardError(f"select with wrong RCA 0x{argument >> 16:x}")
            self.state = "transfer"
            return 0x700
        if command == CMD_SEND_CSD:
            return self.capacity_blocks & 0xFFFFFFFF
        if command in (CMD_READ_SINGLE, CMD_WRITE_SINGLE):
            if self.state != "transfer":
                raise SdCardError(f"data command in state {self.state!r}")
            self._check_lba(argument)
            return 0x900
        raise SdCardError(f"unsupported SD command CMD{command}")
