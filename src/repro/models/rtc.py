"""PL031-style real-time clock.

Seconds-resolution wall clock derived from simulation time plus a
programmable offset, with a match interrupt (``MR``) — the alarm mechanism
Linux's rtc-pl031 driver uses.

Register subset (ARM PL031 offsets):

======  =====  =============================================
offset  name   function
======  =====  =============================================
0x00    DR     current time, seconds (read-only)
0x04    MR     match register (alarm)
0x08    LR     load register (sets current time)
0x0C    CR     bit0 enable
0x10    IMSC   interrupt mask (bit0)
0x14    RIS    raw interrupt status
0x18    MIS    masked interrupt status
0x1C    ICR    interrupt clear
======  =====  =============================================
"""

from __future__ import annotations

from typing import Optional

from ..systemc.module import Module
from ..systemc.signal import IrqLine
from ..systemc.time import SimTime
from ..vcml.peripheral import Peripheral
from ..vcml.register import Access


class Pl031Rtc(Peripheral):
    """A PL031-compatible RTC."""

    def __init__(self, name: str, parent: Optional[Module] = None,
                 epoch_seconds: int = 1_700_000_000):
        super().__init__(name, parent)
        self.epoch_seconds = epoch_seconds
        self._load_offset = 0
        self.match_value = 0
        self.enabled = True
        self.int_mask = 0
        self.raw_status = 0
        self.irq = IrqLine(f"{self.name}.irq", self.kernel)
        self._match_entry = None
        self.add_register("dr", 0x00, access=Access.READ, on_read=self._read_dr)
        self.add_register("mr", 0x04, on_read=lambda: self.match_value,
                          on_write=self._write_mr)
        self.add_register("lr", 0x08, access=Access.WRITE, on_write=self._write_lr)
        self.add_register("cr", 0x0C, reset=1, on_read=lambda: int(self.enabled),
                          on_write=self._write_cr)
        self.add_register("imsc", 0x10, on_read=lambda: self.int_mask,
                          on_write=self._write_imsc)
        self.add_register("ris", 0x14, access=Access.READ, on_read=lambda: self.raw_status)
        self.add_register("mis", 0x18, access=Access.READ,
                          on_read=lambda: self.raw_status & self.int_mask)
        self.add_register("icr", 0x1C, access=Access.WRITE, on_write=self._write_icr)

    # -- time base ---------------------------------------------------------
    def current_seconds(self) -> int:
        return self.epoch_seconds + self._load_offset + int(self.now.to_seconds())

    def _read_dr(self) -> int:
        return self.current_seconds() & 0xFFFFFFFF

    def _write_lr(self, value: int) -> None:
        self._load_offset = value - self.epoch_seconds - int(self.now.to_seconds())
        self._schedule_match()

    def _write_mr(self, value: int) -> None:
        self.match_value = value & 0xFFFFFFFF
        self._schedule_match()

    def _write_cr(self, value: int) -> None:
        self.enabled = bool(value & 1)

    def _write_imsc(self, value: int) -> None:
        self.int_mask = value & 1
        self._update_irq()

    def _write_icr(self, value: int) -> None:
        if value & 1:
            self.raw_status = 0
        self._update_irq()

    # -- snapshot support -------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable RTC state (the pending match entry, if any, is
        rebuilt via the kernel-heap descriptor path in repro.snapshot)."""
        return {
            "load_offset": self._load_offset,
            "match_value": self.match_value,
            "enabled": self.enabled,
            "int_mask": self.int_mask,
            "raw_status": self.raw_status,
            "irq_level": self.irq.level,
        }

    def restore_state(self, state: dict) -> None:
        self._load_offset = state["load_offset"]
        self.match_value = state["match_value"]
        self.enabled = bool(state["enabled"])
        self.int_mask = state["int_mask"]
        self.raw_status = state["raw_status"]
        self._match_entry = None
        self.irq._level = bool(state["irq_level"])

    # -- alarm ------------------------------------------------------------------
    def _schedule_match(self) -> None:
        if self._match_entry is not None:
            self._match_entry.cancelled = True
            self._match_entry = None
        delta = self.match_value - self.current_seconds()
        if delta < 0:
            return
        self._match_entry = self.kernel.schedule_callback(
            SimTime.seconds(delta) + SimTime.ns(1), self._match_fired
        )

    def _match_fired(self) -> None:
        self._match_entry = None
        if self.enabled and self.current_seconds() >= self.match_value:
            self.raw_status |= 1
            self._update_irq()

    def _update_irq(self) -> None:
        self.irq.write(bool(self.raw_status & self.int_mask))
