"""Simulation-control peripheral.

A tiny VP-side device the guest uses to talk to the simulation harness:
signal boot completion, report benchmark checkpoints and request shutdown.
Real VPs have an equivalent (VCML's ``simdev``); it is how wall-clock
measurements like "Linux boot duration" get a precise end marker.

======  ==========  ==============================================
offset  name        function
======  ==========  ==============================================
0x00    SHUTDOWN    write: stop the simulation (value = exit code)
0x08    BOOT_DONE   write: record boot completion
0x10    CHECKPOINT  write: record a numbered checkpoint
0x18    SIMTIME_NS  read: current simulation time in ns
0x20    PANIC       write: stop the simulation, reason "panic"
======  ==========  ==============================================

SHUTDOWN and PANIC both end the run, but with distinct
``stop_reason`` values: an orderly guest exit and a guest-reported
fatal error are different events for post-mortem tooling (the flight
recorder dumps a crash bundle only for the latter).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..systemc.module import Module
from ..systemc.time import SimTime
from ..vcml.peripheral import Peripheral
from ..vcml.register import Access


class SimControl(Peripheral):
    """Guest-to-harness signalling device."""

    def __init__(self, name: str, parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.shutdown_requested = False
        self.exit_code = 0
        self.panic_requested = False
        self.panic_code = 0
        #: why the run stopped through this device: None | "shutdown" | "panic"
        self.stop_reason: Optional[str] = None
        self.boot_done_at: Optional[SimTime] = None
        self.checkpoints: List[Tuple[int, SimTime]] = []
        self.on_shutdown: Optional[Callable[[int], None]] = None
        self.on_boot_done: Optional[Callable[[SimTime], None]] = None
        self.on_checkpoint: Optional[Callable[[int, SimTime], None]] = None
        self.on_panic: Optional[Callable[[int], None]] = None
        self.add_register("shutdown", 0x00, size=8, access=Access.WRITE,
                          on_write=self._write_shutdown)
        self.add_register("boot_done", 0x08, size=8, access=Access.WRITE,
                          on_write=self._write_boot_done)
        self.add_register("checkpoint", 0x10, size=8, access=Access.WRITE,
                          on_write=self._write_checkpoint)
        self.add_register("simtime_ns", 0x18, size=8, access=Access.READ,
                          on_read=lambda: int(self.now.to_ns()))
        self.add_register("panic", 0x20, size=8, access=Access.WRITE,
                          on_write=self._write_panic)

    # -- snapshot support ---------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable control state.  The ``on_*`` callbacks are harness
        wiring, not guest state — the restoring platform re-installs its
        own (RPR012 flags exactly this class of attribute)."""
        return {
            "shutdown_requested": self.shutdown_requested,
            "exit_code": self.exit_code,
            "panic_requested": self.panic_requested,
            "panic_code": self.panic_code,
            "stop_reason": self.stop_reason,
            "boot_done_at_ps": (None if self.boot_done_at is None
                                else self.boot_done_at.picoseconds),
            "checkpoints": [[number, when.picoseconds]
                            for number, when in self.checkpoints],
        }

    def restore_state(self, state: dict) -> None:
        self.shutdown_requested = bool(state["shutdown_requested"])
        self.exit_code = state["exit_code"]
        self.panic_requested = bool(state["panic_requested"])
        self.panic_code = state["panic_code"]
        self.stop_reason = state["stop_reason"]
        self.boot_done_at = (None if state["boot_done_at_ps"] is None
                             else SimTime(state["boot_done_at_ps"]))
        self.checkpoints = [(number, SimTime(ps))
                            for number, ps in state["checkpoints"]]

    def _write_shutdown(self, value: int) -> None:
        self.shutdown_requested = True
        self.exit_code = value
        if self.stop_reason is None:
            self.stop_reason = "shutdown"
        if self.on_shutdown is not None:
            self.on_shutdown(value)
        self.kernel.stop()

    def _write_panic(self, value: int) -> None:
        self.panic_requested = True
        self.panic_code = value
        if self.stop_reason is None:
            self.stop_reason = "panic"
        if self.on_panic is not None:
            self.on_panic(value)
        self.kernel.stop()

    def _write_boot_done(self, value: int) -> None:
        if self.boot_done_at is None:
            self.boot_done_at = self.now
        if self.on_boot_done is not None:
            self.on_boot_done(self.now)

    def _write_checkpoint(self, value: int) -> None:
        self.checkpoints.append((value, self.now))
        if self.on_checkpoint is not None:
            self.on_checkpoint(value, self.now)
