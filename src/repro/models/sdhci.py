"""SD Host Controller Interface (SDHCI) model with a virtual SD card.

A reduced SDHCI: command issue, response registers, single-block PIO data
transfers through the buffer data port, and an interrupt-status block —
enough to drive :class:`SdCard` the way the synthetic Linux mounts its
rootfs, and with the same register offsets a real sdhci driver would touch.

Register subset (SDHCI spec offsets):

======  =============  ==========================================
offset  name           function
======  =============  ==========================================
0x04    BLOCK_SIZE     bytes per block (16-bit, 512 supported)
0x06    BLOCK_COUNT    blocks per transfer (16-bit, 1 supported)
0x08    ARGUMENT       32-bit command argument
0x0C    TRANSFER_MODE  bit4: direction (1 = read)
0x0E    COMMAND        bits [13:8] command index; write issues it
0x10    RESPONSE0      32-bit response
0x20    BUFFER_DATA    PIO FIFO port
0x24    PRESENT_STATE  bit11 buffer-read-enable, bit10 write-enable
0x30    INT_STATUS     bit0 cmd complete, bit1 xfer complete,
                       bit5 buffer-read-ready, bit15 error (W1C)
0x34    INT_ENABLE     interrupt signal enable
======  =============  ==========================================
"""

from __future__ import annotations

from typing import Optional

from ..systemc.module import Module
from ..systemc.signal import IrqLine
from ..vcml.peripheral import Peripheral
from ..vcml.register import Access
from .sdcard import BLOCK_SIZE, CMD_READ_SINGLE, CMD_WRITE_SINGLE, SdCard, SdCardError

INT_CMD_COMPLETE = 1 << 0
INT_XFER_COMPLETE = 1 << 1
INT_BUFFER_WRITE_READY = 1 << 4
INT_BUFFER_READ_READY = 1 << 5
INT_ERROR = 1 << 15

STATE_BUFFER_WRITE_ENABLE = 1 << 10
STATE_BUFFER_READ_ENABLE = 1 << 11


class Sdhci(Peripheral):
    """SD host controller bound to one virtual card."""

    def __init__(self, name: str, card: Optional[SdCard] = None,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.card = card or SdCard()
        self.irq = IrqLine(f"{self.name}.irq", self.kernel)
        self.block_size = BLOCK_SIZE
        self.block_count = 1
        self.argument = 0
        self.transfer_mode = 0
        self.int_status = 0
        self.int_enable = 0
        self._buffer = bytearray()
        self._buffer_pos = 0
        self._buffer_is_read = False
        self._write_lba = 0
        self.num_commands = 0
        self.add_register("block_size", 0x04, size=2, reset=BLOCK_SIZE,
                          on_read=lambda: self.block_size, on_write=self._write_block_size)
        self.add_register("block_count", 0x06, size=2, reset=1,
                          on_read=lambda: self.block_count, on_write=self._write_block_count)
        self.add_register("argument", 0x08, on_read=lambda: self.argument,
                          on_write=self._write_argument)
        self.add_register("transfer_mode", 0x0C, size=2,
                          on_read=lambda: self.transfer_mode, on_write=self._write_mode)
        self.add_register("command", 0x0E, size=2, on_write=self._write_command)
        self.add_register("response0", 0x10, access=Access.READ)
        self.add_register("buffer_data", 0x20, on_read=self._read_buffer,
                          on_write=self._write_buffer)
        self.add_register("present_state", 0x24, access=Access.READ,
                          on_read=self._read_present_state)
        self.add_register("int_status", 0x30, on_read=lambda: self.int_status,
                          on_write=self._clear_int_status)
        self.add_register("int_enable", 0x34, on_read=lambda: self.int_enable,
                          on_write=self._write_int_enable)

    # -- snapshot support --------------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "block_size": self.block_size,
            "block_count": self.block_count,
            "argument": self.argument,
            "transfer_mode": self.transfer_mode,
            "int_status": self.int_status,
            "int_enable": self.int_enable,
            "buffer": bytes(self._buffer).hex(),
            "buffer_pos": self._buffer_pos,
            "buffer_is_read": self._buffer_is_read,
            "write_lba": self._write_lba,
            "num_commands": self.num_commands,
            "irq_level": self.irq.level,
            "card": self.card.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.block_size = state["block_size"]
        self.block_count = state["block_count"]
        self.argument = state["argument"]
        self.transfer_mode = state["transfer_mode"]
        self.int_status = state["int_status"]
        self.int_enable = state["int_enable"]
        self._buffer = bytearray.fromhex(state["buffer"])
        self._buffer_pos = state["buffer_pos"]
        self._buffer_is_read = bool(state["buffer_is_read"])
        self._write_lba = state["write_lba"]
        self.num_commands = state["num_commands"]
        self.irq._level = bool(state["irq_level"])
        self.card.restore_state(state["card"])

    # -- register behaviour ------------------------------------------------------
    def _write_block_size(self, value: int) -> None:
        self.block_size = value & 0xFFF

    def _write_block_count(self, value: int) -> None:
        self.block_count = value & 0xFFFF

    def _write_argument(self, value: int) -> None:
        self.argument = value & 0xFFFFFFFF

    def _write_mode(self, value: int) -> None:
        self.transfer_mode = value & 0xFFFF

    def _write_command(self, value: int) -> None:
        command = (value >> 8) & 0x3F
        self.num_commands += 1
        try:
            response = self.card.execute(command, self.argument)
        except SdCardError:
            self._raise_status(INT_ERROR)
            return
        self.regs["response0"].poke(response & 0xFFFFFFFF)
        status = INT_CMD_COMPLETE
        if command == CMD_READ_SINGLE:
            self._buffer = bytearray(self.card.read_block(self.argument))
            self._buffer_pos = 0
            self._buffer_is_read = True
            status |= INT_BUFFER_READ_READY
        elif command == CMD_WRITE_SINGLE:
            self._buffer = bytearray()
            self._buffer_pos = 0
            self._buffer_is_read = False
            self._write_lba = self.argument
            status |= INT_BUFFER_WRITE_READY
        self._raise_status(status)

    def _read_buffer(self) -> int:
        if not self._buffer_is_read or self._buffer_pos >= len(self._buffer):
            return 0
        chunk = self._buffer[self._buffer_pos:self._buffer_pos + 4]
        self._buffer_pos += 4
        if self._buffer_pos >= len(self._buffer):
            self._buffer_is_read = False
            self._raise_status(INT_XFER_COMPLETE)
        return int.from_bytes(chunk.ljust(4, b"\x00"), "little")

    def _write_buffer(self, value: int) -> None:
        if self._buffer_is_read:
            return
        self._buffer += value.to_bytes(4, "little")
        if len(self._buffer) >= self.block_size:
            self.card.write_block(self._write_lba, bytes(self._buffer[:BLOCK_SIZE]))
            self._buffer = bytearray()
            self._raise_status(INT_XFER_COMPLETE)

    def _read_present_state(self) -> int:
        state = 1 << 16 | 1 << 17 | 1 << 18   # card inserted, stable, write-enabled
        if self._buffer_is_read and self._buffer_pos < len(self._buffer):
            state |= STATE_BUFFER_READ_ENABLE
        if not self._buffer_is_read:
            state |= STATE_BUFFER_WRITE_ENABLE
        return state

    def _clear_int_status(self, value: int) -> None:
        self.int_status &= ~value
        self._update_irq()

    def _write_int_enable(self, value: int) -> None:
        self.int_enable = value & 0xFFFF
        self._update_irq()

    def _raise_status(self, bits: int) -> None:
        self.int_status |= bits
        self._update_irq()

    def _update_irq(self) -> None:
        self.irq.write(bool(self.int_status & self.int_enable))
