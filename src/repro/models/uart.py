"""PL011-style UART.

The VP's console device.  Transmit data lands in a host-side buffer (and an
optional callback), receive data is injected from the host side and raises
a level-triggered interrupt while the FIFO is non-empty and unmasked.

Register subset (ARM PL011 offsets):

======  =====  ===============================================
offset  name   function
======  =====  ===============================================
0x000   DR     data register (write: tx, read: rx FIFO pop)
0x018   FR     flags: bit4 RXFE, bit5 TXFF, bit7 TXFE
0x024   IBRD   integer baud-rate divisor (stored only)
0x028   FBRD   fractional baud-rate divisor (stored only)
0x030   CR     control: bit0 UARTEN
0x038   IMSC   interrupt mask: bit4 RXIM
0x03C   RIS    raw interrupt status
0x040   MIS    masked interrupt status
0x044   ICR    interrupt clear
0xFE0+  ID     peripheral/cell id bytes
======  =====  ===============================================
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..systemc.module import Module
from ..systemc.signal import IrqLine
from ..vcml.peripheral import Peripheral
from ..vcml.register import Access

FR_RXFE = 1 << 4
FR_TXFF = 1 << 5
FR_TXFE = 1 << 7

INT_RX = 1 << 4

_PERIPH_ID = (0x11, 0x10, 0x14, 0x00, 0x0D, 0xF0, 0x05, 0xB1)


class Pl011Uart(Peripheral):
    """A PL011-compatible serial port with host-side tx/rx hooks."""

    RX_FIFO_DEPTH = 16

    def __init__(self, name: str, parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.tx_log = bytearray()
        self.on_tx: Optional[Callable[[int], None]] = None
        self._rx_fifo: Deque[int] = deque()
        self.irq = IrqLine(f"{self.name}.irq", self.kernel)
        self.control = 0x300           # TXE | RXE, UART disabled at reset
        self.int_mask = 0
        self.raw_status = 0
        self.ibrd = 0
        self.fbrd = 0
        self.add_register("dr", 0x000, on_read=self._read_dr, on_write=self._write_dr)
        self.add_register("fr", 0x018, access=Access.READ, on_read=self._read_fr)
        self.add_register("ibrd", 0x024, on_read=lambda: self.ibrd,
                          on_write=self._write_ibrd)
        self.add_register("fbrd", 0x028, on_read=lambda: self.fbrd,
                          on_write=self._write_fbrd)
        self.add_register("cr", 0x030, reset=0x300, on_read=lambda: self.control,
                          on_write=self._write_cr)
        self.add_register("imsc", 0x038, on_read=lambda: self.int_mask,
                          on_write=self._write_imsc)
        self.add_register("ris", 0x03C, access=Access.READ, on_read=lambda: self.raw_status)
        self.add_register("mis", 0x040, access=Access.READ,
                          on_read=lambda: self.raw_status & self.int_mask)
        self.add_register("icr", 0x044, access=Access.WRITE, on_write=self._write_icr)
        for index, value in enumerate(_PERIPH_ID):
            self.add_register(f"id{index}", 0xFE0 + 4 * index, reset=value,
                              access=Access.READ)

    @property
    def enabled(self) -> bool:
        return bool(self.control & 1)

    # -- host-side interface --------------------------------------------------
    def inject_rx(self, data: bytes) -> None:
        """Host-side: feed received characters into the RX FIFO."""
        for byte in data:
            if len(self._rx_fifo) < self.RX_FIFO_DEPTH:
                self._rx_fifo.append(byte)
        if self._rx_fifo:
            self.raw_status |= INT_RX
        self._update_irq()

    def tx_text(self) -> str:
        return self.tx_log.decode("utf-8", errors="replace")

    # -- snapshot support -----------------------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "tx_log": self.tx_log.hex(),
            "rx_fifo": list(self._rx_fifo),
            "control": self.control,
            "int_mask": self.int_mask,
            "raw_status": self.raw_status,
            "ibrd": self.ibrd,
            "fbrd": self.fbrd,
            "irq_level": self.irq.level,
        }

    def restore_state(self, state: dict) -> None:
        self.tx_log = bytearray.fromhex(state["tx_log"])
        self._rx_fifo = deque(state["rx_fifo"])
        self.control = state["control"]
        self.int_mask = state["int_mask"]
        self.raw_status = state["raw_status"]
        self.ibrd = state["ibrd"]
        self.fbrd = state["fbrd"]
        self.irq._level = bool(state["irq_level"])

    # -- register behaviour --------------------------------------------------------
    def _write_dr(self, value: int) -> None:
        byte = value & 0xFF
        self.tx_log.append(byte)
        if self.on_tx is not None:
            self.on_tx(byte)

    def _read_dr(self) -> int:
        if not self._rx_fifo:
            return 0
        byte = self._rx_fifo.popleft()
        if not self._rx_fifo:
            self.raw_status &= ~INT_RX
        self._update_irq()
        return byte

    def _read_fr(self) -> int:
        flags = FR_TXFE            # tx never backs up in this model
        if not self._rx_fifo:
            flags |= FR_RXFE
        return flags

    def _write_cr(self, value: int) -> None:
        self.control = value & 0xFFFF
        self._update_irq()

    def _write_imsc(self, value: int) -> None:
        self.int_mask = value & 0x7FF
        self._update_irq()

    def _write_icr(self, value: int) -> None:
        # RX is level-derived from FIFO state; other bits clear on write.
        self.raw_status &= ~(value & ~INT_RX)
        self._update_irq()

    def _write_ibrd(self, value: int) -> None:
        self.ibrd = value & 0xFFFF

    def _write_fbrd(self, value: int) -> None:
        self.fbrd = value & 0x3F

    def _update_irq(self) -> None:
        self.irq.write(self.enabled and bool(self.raw_status & self.int_mask))
