"""GIC-400 interrupt controller model (GICv2 subset).

Implements the pieces the VP and the synthetic Linux use:

* **Distributor** (``GICD``): global enable, per-interrupt enable bits,
  software-generated interrupts (``GICD_SGIR`` — the IPI mechanism used for
  secondary-core bring-up), SPI target routing.
* **CPU interfaces** (``GICC``, one register window per core): priority
  mask, interrupt acknowledge (``GICC_IAR``) and end-of-interrupt
  (``GICC_EOIR``).

Interrupt taxonomy follows the architecture: ids 0–15 are SGIs (banked per
core), 16–31 PPIs (banked per core, used by the per-core timer), 32+ SPIs
(global, routed by target mask).  Each core has an ``nIRQ`` output line
(:class:`IrqLine`) that the CPU models connect to; the line is high while
any enabled, pending, un-acknowledged interrupt is routed to that core.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..systemc.module import Module
from ..systemc.signal import IrqLine
from ..systemc.time import SimTime
from ..tlm.payload import GenericPayload, ResponseStatus
from ..tlm.sockets import TargetSocket
from ..vcml.component import Component

SPURIOUS_IRQ = 1023

# Distributor register offsets.
GICD_CTLR = 0x000
GICD_TYPER = 0x004
GICD_ISENABLER = 0x100    # 0x100..0x17C
GICD_ICENABLER = 0x180
GICD_ISPENDR = 0x200
GICD_ICPENDR = 0x280
GICD_ITARGETSR = 0x800    # byte per interrupt
GICD_SGIR = 0xF00

# CPU-interface register offsets.
GICC_CTLR = 0x00
GICC_PMR = 0x04
GICC_IAR = 0x0C
GICC_EOIR = 0x10

GICD_SIZE = 0x1000
GICC_SIZE = 0x100


class Gic400(Component):
    """A GICv2-style interrupt controller for up to 8 cores.

    Distributor and CPU-interface state (the pending/enabled/active sets,
    the per-core banked lists) is touched from every core's MMIO path, so
    it is cross-lane shared under the planned parallel quantum kernel.
    ``python -m repro.analysis --race`` tracks each such mutation against
    the committed baseline until the state migrates behind a sanctioned
    channel (quantum-barrier merge of per-lane IRQ queues).
    """

    MAX_IRQS = 256

    def __init__(self, name: str, num_cpus: int, parent: Optional[Module] = None):
        super().__init__(name, parent)
        if not 1 <= num_cpus <= 8:
            raise ValueError(f"GIC-400 supports 1..8 cpus, got {num_cpus}")
        self.num_cpus = num_cpus
        self.dist_enabled = False
        self.cpu_enabled = [False] * num_cpus
        self.priority_mask = [0xFF] * num_cpus
        self.enabled: Set[int] = set()
        # Banked pending state for SGIs/PPIs; global for SPIs.
        self.pending_banked: List[Set[int]] = [set() for _ in range(num_cpus)]
        self.pending_spi: Set[int] = set()
        self.active: List[Set[int]] = [set() for _ in range(num_cpus)]
        self.spi_levels: Dict[int, bool] = {}
        self.spi_targets: Dict[int, int] = {}     # irq -> cpu bit mask
        # Input-line registries (the wiring callbacks hold the only other
        # reference); repro.snapshot restores their latched levels so the
        # IrqLine level dedupe stays consistent with the latched GIC state.
        self._spi_lines: Dict[int, IrqLine] = {}
        self._ppi_lines: Dict[Tuple[int, int], IrqLine] = {}
        self.irq_out: List[IrqLine] = [
            IrqLine(f"{self.name}.irq_out{cpu}", self.kernel) for cpu in range(num_cpus)
        ]
        self.dist_socket = TargetSocket(f"{self.name}.dist", self._dist_transport)
        self.cpu_sockets = [
            TargetSocket(f"{self.name}.cpu{cpu}", self._make_cpu_transport(cpu))
            for cpu in range(num_cpus)
        ]
        self.num_sgis_sent = 0
        self.num_acks = 0
        self.num_eois = 0

    # -- peripheral-facing interrupt inputs ------------------------------------
    def spi_in(self, irq: int) -> IrqLine:
        """Level-sensitive SPI input line (irq id >= 32)."""
        if irq < 32 or irq >= self.MAX_IRQS:
            raise ValueError(f"SPI id must be in [32, {self.MAX_IRQS}), got {irq}")
        line = self._spi_lines.get(irq)
        if line is None:
            line = IrqLine(f"{self.name}.spi{irq}", self.kernel)
            line.connect(lambda level, irq=irq: self._spi_changed(irq, level))
            self._spi_lines[irq] = line
        self.spi_targets.setdefault(irq, 0x1)     # default target: cpu 0
        return line

    def ppi_in(self, cpu: int, irq: int) -> IrqLine:
        """Per-core private peripheral interrupt input (16 <= id < 32)."""
        if not 16 <= irq < 32:
            raise ValueError(f"PPI id must be in [16, 32), got {irq}")
        line = self._ppi_lines.get((cpu, irq))
        if line is None:
            line = IrqLine(f"{self.name}.cpu{cpu}.ppi{irq}", self.kernel)
            line.connect(lambda level, cpu=cpu, irq=irq: self._ppi_changed(cpu, irq, level))
            self._ppi_lines[(cpu, irq)] = line
        return line

    def _spi_changed(self, irq: int, level: bool) -> None:
        self.spi_levels[irq] = level
        if level:
            self.pending_spi.add(irq)
        self._update_lines()

    def _ppi_changed(self, cpu: int, irq: int, level: bool) -> None:
        if level:
            self.pending_banked[cpu].add(irq)
        else:
            self.pending_banked[cpu].discard(irq)
        self._update_lines()

    # -- host-side helpers ---------------------------------------------------------
    def send_sgi(self, irq: int, target_mask: int) -> None:
        """Raise SGI ``irq`` on every core in ``target_mask`` (testing hook)."""
        if not 0 <= irq < 16:
            raise ValueError(f"SGI id must be in [0, 16), got {irq}")
        for cpu in range(self.num_cpus):
            if target_mask & (1 << cpu):
                self.pending_banked[cpu].add(irq)
        self.num_sgis_sent += 1
        self._update_lines()

    # -- line computation --------------------------------------------------------------
    def _routed_pending(self, cpu: int) -> List[int]:
        """Enabled pending interrupts routed to ``cpu`` (not yet active)."""
        candidates: List[int] = []
        if not self.dist_enabled or not self.cpu_enabled[cpu]:
            return candidates
        for irq in self.pending_banked[cpu]:
            if irq in self.enabled or irq < 16:   # SGIs are always enabled
                if irq not in self.active[cpu]:
                    candidates.append(irq)
        for irq in self.pending_spi:
            if irq in self.enabled and self.spi_targets.get(irq, 0) & (1 << cpu):
                if irq not in self.active[cpu]:
                    candidates.append(irq)
        return candidates

    def _update_lines(self) -> None:
        for cpu in range(self.num_cpus):
            self.irq_out[cpu].write(bool(self._routed_pending(cpu)))

    # -- acknowledge / EOI --------------------------------------------------------------
    def acknowledge(self, cpu: int) -> int:
        """GICC_IAR read: claim the highest-priority pending interrupt."""
        candidates = self._routed_pending(cpu)
        if not candidates:
            return SPURIOUS_IRQ
        irq = min(candidates)    # lowest id wins (no priority regs modeled)
        self.num_acks += 1
        if irq < 32:
            self.pending_banked[cpu].discard(irq)
        else:
            self.pending_spi.discard(irq)
        self.active[cpu].add(irq)
        self._update_lines()
        return irq

    def end_of_interrupt(self, cpu: int, irq: int) -> None:
        """GICC_EOIR write: deactivate; re-pend level-triggered SPIs."""
        self.active[cpu].discard(irq)
        self.num_eois += 1
        if irq >= 32 and self.spi_levels.get(irq):
            self.pending_spi.add(irq)
        self._update_lines()

    # -- snapshot support ---------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable distributor + CPU-interface state.

        Every set is emitted *sorted*: pending/enabled/active sets are
        mutated in guest-dependent order, and Python set iteration order
        depends on that insertion history — canonical ordering is what
        makes snapshot bytes deterministic (see DESIGN §16).
        """
        return {
            "dist_enabled": self.dist_enabled,
            "cpu_enabled": list(self.cpu_enabled),
            "priority_mask": list(self.priority_mask),
            "enabled": sorted(self.enabled),
            "pending_banked": [sorted(bank) for bank in self.pending_banked],
            "pending_spi": sorted(self.pending_spi),
            "active": [sorted(bank) for bank in self.active],
            "spi_levels": {str(irq): bool(level) for irq, level
                           in sorted(self.spi_levels.items())},
            "spi_targets": {str(irq): mask for irq, mask
                            in sorted(self.spi_targets.items())},
            "irq_out_levels": [line.level for line in self.irq_out],
            "spi_line_levels": {str(irq): self._spi_lines[irq].level
                                for irq in sorted(self._spi_lines)},
            "ppi_line_levels": {f"{cpu}:{irq}": self._ppi_lines[(cpu, irq)].level
                                for cpu, irq in sorted(self._ppi_lines)},
            "num_sgis_sent": self.num_sgis_sent,
            "num_acks": self.num_acks,
            "num_eois": self.num_eois,
        }

    def restore_state(self, state: dict) -> None:
        """Install a :meth:`snapshot_state` dict (no line-change callbacks).

        Output line levels are poked directly; downstream consumers (the
        CPU models' latched levels) restore their own state, so replaying
        the connect-callback chain here would double-apply it.
        """
        self.dist_enabled = bool(state["dist_enabled"])
        self.cpu_enabled = [bool(flag) for flag in state["cpu_enabled"]]
        self.priority_mask = list(state["priority_mask"])
        self.enabled = set(state["enabled"])
        self.pending_banked = [set(bank) for bank in state["pending_banked"]]
        self.pending_spi = set(state["pending_spi"])
        self.active = [set(bank) for bank in state["active"]]
        self.spi_levels = {int(irq): bool(level)
                           for irq, level in state["spi_levels"].items()}
        self.spi_targets = {int(irq): mask
                            for irq, mask in state["spi_targets"].items()}
        for line, level in zip(self.irq_out, state["irq_out_levels"]):
            line._level = bool(level)
        for irq, level in state.get("spi_line_levels", {}).items():
            self._spi_lines[int(irq)]._level = bool(level)
        for key, level in state.get("ppi_line_levels", {}).items():
            cpu, _, irq = key.partition(":")
            self._ppi_lines[(int(cpu), int(irq))]._level = bool(level)
        self.num_sgis_sent = state["num_sgis_sent"]
        self.num_acks = state["num_acks"]
        self.num_eois = state["num_eois"]

    # -- TLM transport -----------------------------------------------------------------
    def _dist_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        offset = payload.address
        if payload.is_read:
            value = self._dist_read(offset, payload.length)
            if value is None:
                payload.set_error(ResponseStatus.ADDRESS_ERROR)
                return delay
            payload.set_data_int(value, payload.length)
            payload.set_ok()
            return delay + SimTime.ns(10)
        if payload.is_write:
            if not self._dist_write(offset, payload.data_as_int(), payload.length):
                payload.set_error(ResponseStatus.ADDRESS_ERROR)
                return delay
            payload.set_ok()
            return delay + SimTime.ns(10)
        payload.set_error(ResponseStatus.COMMAND_ERROR)
        return delay

    def _dist_read(self, offset: int, length: int) -> Optional[int]:
        if offset == GICD_CTLR:
            return int(self.dist_enabled)
        if offset == GICD_TYPER:
            lines = self.MAX_IRQS // 32 - 1
            return ((self.num_cpus - 1) << 5) | lines
        if GICD_ISENABLER <= offset < GICD_ISENABLER + 0x80:
            bank = (offset - GICD_ISENABLER) // 4
            return self._enable_bits(bank)
        if GICD_ITARGETSR <= offset < GICD_ITARGETSR + self.MAX_IRQS:
            irq = offset - GICD_ITARGETSR
            return self.spi_targets.get(irq, 1 if irq < 32 else 0)
        return 0 if offset < GICD_SIZE else None

    def _enable_bits(self, bank: int) -> int:
        value = 0
        for bit in range(32):
            if bank * 32 + bit in self.enabled:
                value |= 1 << bit
        return value

    def _dist_write(self, offset: int, value: int, length: int) -> bool:
        if offset == GICD_CTLR:
            self.dist_enabled = bool(value & 1)
            self._update_lines()
            return True
        if GICD_ISENABLER <= offset < GICD_ISENABLER + 0x80:
            bank = (offset - GICD_ISENABLER) // 4
            for bit in range(32):
                if value & (1 << bit):
                    self.enabled.add(bank * 32 + bit)
            self._update_lines()
            return True
        if GICD_ICENABLER <= offset < GICD_ICENABLER + 0x80:
            bank = (offset - GICD_ICENABLER) // 4
            for bit in range(32):
                if value & (1 << bit):
                    self.enabled.discard(bank * 32 + bit)
            self._update_lines()
            return True
        if GICD_ISPENDR <= offset < GICD_ISPENDR + 0x80:
            bank = (offset - GICD_ISPENDR) // 4
            for bit in range(32):
                if value & (1 << bit):
                    irq = bank * 32 + bit
                    if irq >= 32:
                        self.pending_spi.add(irq)
            self._update_lines()
            return True
        if GICD_ICPENDR <= offset < GICD_ICPENDR + 0x80:
            bank = (offset - GICD_ICPENDR) // 4
            for bit in range(32):
                if value & (1 << bit):
                    self.pending_spi.discard(bank * 32 + bit)
            self._update_lines()
            return True
        if GICD_ITARGETSR <= offset < GICD_ITARGETSR + self.MAX_IRQS:
            for index in range(length):
                irq = offset - GICD_ITARGETSR + index
                if irq >= 32:
                    self.spi_targets[irq] = (value >> (8 * index)) & 0xFF
            self._update_lines()
            return True
        if offset == GICD_SGIR:
            sgi = value & 0xF
            filter_mode = (value >> 24) & 0x3
            targets = (value >> 16) & 0xFF
            if filter_mode == 1:          # all but self (sender unknown: all)
                targets = (1 << self.num_cpus) - 1
            elif filter_mode == 2:        # self only: approximate as cpu0
                targets = 0x1
            self.send_sgi(sgi, targets)
            return True
        return offset < GICD_SIZE

    def _make_cpu_transport(self, cpu: int):
        def transport(payload: GenericPayload, delay: SimTime) -> SimTime:
            offset = payload.address
            if payload.is_read:
                if offset == GICC_IAR:
                    payload.set_data_int(self.acknowledge(cpu), payload.length)
                elif offset == GICC_CTLR:
                    payload.set_data_int(int(self.cpu_enabled[cpu]), payload.length)
                elif offset == GICC_PMR:
                    payload.set_data_int(self.priority_mask[cpu], payload.length)
                elif offset < GICC_SIZE:
                    payload.set_data_int(0, payload.length)
                else:
                    payload.set_error(ResponseStatus.ADDRESS_ERROR)
                    return delay
                payload.set_ok()
                return delay + SimTime.ns(10)
            if payload.is_write:
                value = payload.data_as_int()
                if offset == GICC_CTLR:
                    self.cpu_enabled[cpu] = bool(value & 1)
                    self._update_lines()
                elif offset == GICC_PMR:
                    self.priority_mask[cpu] = value & 0xFF
                elif offset == GICC_EOIR:
                    self.end_of_interrupt(cpu, value & 0x3FF)
                elif offset >= GICC_SIZE:
                    payload.set_error(ResponseStatus.ADDRESS_ERROR)
                    return delay
                payload.set_ok()
                return delay + SimTime.ns(10)
            payload.set_error(ResponseStatus.COMMAND_ERROR)
            return delay
        return transport
