"""Memory-mapped multi-channel timer.

The vCPU subsystem of the paper's VP contains "a memory-mapped timer"
next to the GIC-400 (Fig. 4).  This model provides one countdown channel
per core; each channel raises a level-triggered interrupt (wired to a GIC
PPI) when its countdown reaches zero and can automatically reload for
periodic operation — the guest's jiffy tick.

Per-channel register block (stride 0x20):

======  ==========  ==========================================
offset  name        function
======  ==========  ==========================================
0x00    CTRL        bit0 enable, bit1 periodic, bit2 irq enable
0x04    INTERVAL    reload value in timer ticks
0x08    VALUE       current countdown (read-only)
0x0C    INT_STATUS  bit0 expired (read-only)
0x10    INT_CLR     write anything to clear the interrupt
======  ==========  ==========================================

A global read-only ``COUNTER`` (64-bit free-running tick counter derived
from simulation time) lives at offset 0x1000.
"""

from __future__ import annotations

from typing import List, Optional

from ..systemc.module import Module
from ..systemc.signal import IrqLine
from ..systemc.time import SimTime
from ..vcml.peripheral import Peripheral
from ..vcml.register import Access

CHANNEL_STRIDE = 0x20
COUNTER_OFFSET = 0x1000

CTRL_ENABLE = 1 << 0
CTRL_PERIODIC = 1 << 1
CTRL_IRQ_ENABLE = 1 << 2


class _Channel:
    def __init__(self, owner: "MmTimer", index: int):
        self.owner = owner
        self.index = index
        self.ctrl = 0
        self.interval = 0
        self.expired = False
        self.irq = IrqLine(f"{owner.name}.irq{index}", owner.kernel)
        self._armed_at: Optional[SimTime] = None
        self._entry = None

    # -- register behaviour ----------------------------------------------------
    def write_ctrl(self, value: int) -> None:
        was_enabled = bool(self.ctrl & CTRL_ENABLE)
        self.ctrl = value & 0x7
        enabled = bool(self.ctrl & CTRL_ENABLE)
        if enabled and not was_enabled:
            self._arm()
        elif not enabled:
            self._disarm()
        self._update_irq()

    def write_interval(self, value: int) -> None:
        self.interval = value & 0xFFFFFFFF
        if self.ctrl & CTRL_ENABLE:
            self._arm()

    def read_value(self) -> int:
        if self._armed_at is None or self.interval == 0:
            return 0
        elapsed_ticks = self.owner.time_to_cycles(self.owner.now - self._armed_at)
        remaining = self.interval - elapsed_ticks
        return max(0, remaining) & 0xFFFFFFFF

    def clear_interrupt(self) -> None:
        self.expired = False
        self._update_irq()

    # -- countdown machinery -------------------------------------------------------
    def _arm(self) -> None:
        self._disarm()
        if self.interval == 0:
            return
        self._armed_at = self.owner.now
        duration = self.owner.cycles_to_time(self.interval)
        self._entry = self.owner.kernel.schedule_callback(duration, self._expire)

    def _disarm(self) -> None:
        if self._entry is not None:
            self._entry.cancelled = True
            self._entry = None
        self._armed_at = None

    def _expire(self) -> None:
        self._entry = None
        if not self.ctrl & CTRL_ENABLE:
            return
        self.expired = True
        self.owner.num_expirations += 1
        self._update_irq()
        if self.ctrl & CTRL_PERIODIC:
            self._arm()
        else:
            self._armed_at = None

    def _update_irq(self) -> None:
        self.irq.write(self.expired and bool(self.ctrl & CTRL_IRQ_ENABLE))


class MmTimer(Peripheral):
    """Multi-channel memory-mapped timer (one channel per core)."""

    def __init__(self, name: str, num_channels: int, parent: Optional[Module] = None):
        super().__init__(name, parent)
        if num_channels < 1:
            raise ValueError("timer needs at least one channel")
        self.num_expirations = 0
        self.channels: List[_Channel] = []
        for index in range(num_channels):
            channel = _Channel(self, index)
            self.channels.append(channel)
            base = index * CHANNEL_STRIDE
            self.add_register(f"ctrl{index}", base + 0x00,
                              on_read=lambda ch=channel: ch.ctrl,
                              on_write=lambda v, ch=channel: ch.write_ctrl(v))
            self.add_register(f"interval{index}", base + 0x04,
                              on_read=lambda ch=channel: ch.interval,
                              on_write=lambda v, ch=channel: ch.write_interval(v))
            self.add_register(f"value{index}", base + 0x08, access=Access.READ,
                              on_read=lambda ch=channel: ch.read_value())
            self.add_register(f"int_status{index}", base + 0x0C, access=Access.READ,
                              on_read=lambda ch=channel: int(ch.expired))
            self.add_register(f"int_clr{index}", base + 0x10, access=Access.WRITE,
                              on_write=lambda v, ch=channel: ch.clear_interrupt())
        self.add_register("counter", COUNTER_OFFSET, size=8, access=Access.READ,
                          on_read=self._read_counter)

    def irq_line(self, channel: int) -> IrqLine:
        return self.channels[channel].irq

    # -- snapshot support ---------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable timer state (counters + per-channel countdowns).

        A channel's pending ``_expire`` heap entry is *not* captured here —
        it lives in the kernel's timed heap, which repro.snapshot serializes
        and rebuilds wholesale; ``_armed_at`` (absolute picoseconds) is
        enough to keep VALUE reads consistent after restore.
        """
        return {
            "num_expirations": self.num_expirations,
            "channels": [
                {
                    "ctrl": channel.ctrl,
                    "interval": channel.interval,
                    "expired": channel.expired,
                    "armed_at_ps": (None if channel._armed_at is None
                                    else channel._armed_at.picoseconds),
                    "irq_level": channel.irq.level,
                }
                for channel in self.channels
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Install a :meth:`snapshot_state` dict without re-arming channels.

        Pending expirations are reattached by repro.snapshot when it
        rebuilds the kernel heap (the rebuilt entry is handed back via
        ``channel._entry``); IRQ levels are poked, not written, so the GIC —
        restored separately — does not see duplicate edges.
        """
        self.num_expirations = state["num_expirations"]
        for channel, data in zip(self.channels, state["channels"]):
            channel.ctrl = data["ctrl"]
            channel.interval = data["interval"]
            channel.expired = bool(data["expired"])
            channel._armed_at = (None if data["armed_at_ps"] is None
                                 else SimTime(data["armed_at_ps"]))
            channel._entry = None
            channel.irq._level = bool(data["irq_level"])

    def _read_counter(self) -> int:
        return self.time_to_cycles(self.now)

    def start_periodic(self, channel: int, ticks: int) -> None:
        """Host-side convenience: program a periodic interrupting channel."""
        ch = self.channels[channel]
        ch.write_interval(ticks)
        ch.write_ctrl(CTRL_ENABLE | CTRL_PERIODIC | CTRL_IRQ_ENABLE)
