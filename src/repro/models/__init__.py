"""Peripheral models of the VP (Fig. 4): GIC-400, memory-mapped timer,
PL011 UART, PL031 RTC, SDHCI host controller and the virtual SD card."""

from .gic import Gic400, SPURIOUS_IRQ
from .rtc import Pl031Rtc
from .sdcard import BLOCK_SIZE, SdCard, SdCardError
from .sdhci import Sdhci
from .simctl import SimControl
from .timer import MmTimer
from .uart import Pl011Uart

__all__ = [
    "BLOCK_SIZE",
    "Gic400",
    "MmTimer",
    "Pl011Uart",
    "Pl031Rtc",
    "SPURIOUS_IRQ",
    "SdCard",
    "SdCardError",
    "Sdhci",
    "SimControl",
]
