"""Calibrated host-cost parameters.

The paper's results are wall-clock measurements on two physical hosts:

* the AoA VP on an Apple Mac mini (M2 Pro: 6 performance + 4 efficiency
  cores), and
* the ISS-based AVP64 on an AMD Ryzen 9 3900X.

Neither host (nor KVM) is available here, so every host-side activity is
billed modeled nanoseconds from the parameter sets below.  Values are
derived from the paper's headline numbers and public microarchitecture
data; the derivations matter more than the digits, because the reproduced
artifact is the *shape* of each figure:

``native_ns_per_inst`` — Fig. 5 reports ≈ 10,000 accumulated MIPS for a
single-core AoA VP, i.e. 0.1 ns of host wall time per guest instruction
(superscalar execution at 3.7 GHz).  Efficiency cores get a 1.8× slowdown
(3.4 GHz Blizzard, narrower issue) — that asymmetry produces the octa-core
dip in Fig. 5.

``entry_exit_ns`` / ``mmio_roundtrip_ns`` — ARM EL2 world switches cost a
few hundred ns; a full KVM_RUN round trip with ioctl overhead lands in the
~2 µs range, and a user-space MMIO exit roughly doubles that [20].  These
terms make small quanta expensive for AoA (Fig. 5, 100 µs curves).

``dbt_dispatch_ns_per_inst`` — AVP64's DBT ISS reaches ≈ 1,000 MIPS in
steady state (Fig. 5), i.e. 1 ns per instruction.

``dbt_translation_ns_per_block`` — MiBench *small* variants reach 165×
speedup versus ≈ 8× for *large* variants (Fig. 7).  The difference is
translation amortization, which calibrates the per-block translation cost
to the ~20 µs range (decode + IR + host-code emission per block).

``iss_mem_extra_ns`` / ``iss_tlb_miss_ns`` — software MMU translation per
memory access; drives the STREAM results (Fig. 7), where the AoA model uses
the host MMU's two-stage translation for free.

``iss_wfi_ns`` vs ``wfi_trap_ns``/``debug_exit_ns`` — for an ISS, WFI is an
in-process C++ call; for AoA it is at least an EL2 trap and, with WFI
annotations, a debug exit to user space.  This asymmetry shrinks the
Linux-boot speedup at higher core counts (Fig. 7), as §V-C notes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KvmCostParams:
    """Host-time costs of the KVM/AoA execution path (M2 Pro host)."""

    native_ns_per_inst: float = 0.10       # P-core guest IPC*freq => 10,000 MIPS
    efficiency_slowdown: float = 1.8       # E-core slowdown factor
    entry_exit_ns: float = 1800.0          # KVM_RUN enter+exit (EL2 round trip)
    mmio_roundtrip_ns: float = 3500.0      # MMIO exit to user space + resume
    wfi_trap_ns: float = 1200.0            # in-kernel WFI trap + reschedule
    debug_exit_ns: float = 2500.0          # breakpoint (guest debug) exit
    signal_delivery_ns: float = 4000.0     # watchdog SIGUSR1 delivery + EINTR
    irq_injection_ns: float = 600.0        # KVM_IRQ_LINE ioctl
    watchdog_program_ns: float = 300.0     # arming the software watchdog
    wfi_suspend_resume_ns: float = 900.0   # SystemC suspend + event resume
    emulation_exit_ns: float = 3000.0      # illegal-opcode trap to user space
    emulation_step_ns: float = 400.0       # software emulation of one instruction


@dataclass(frozen=True)
class IssCostParams:
    """Host-time costs of the DBT-ISS execution path (AVP64 on the Ryzen)."""

    dispatch_ns_per_inst: float = 0.75     # with typical memory mix: ~1,000 MIPS
    translation_ns_per_block: float = 25000.0
    mem_extra_ns: float = 0.75             # software MMU per access (TLB hit)
    tlb_miss_ns: float = 250.0             # software page-table walk + refill
    mmio_ns: float = 250.0                 # in-process TLM b_transport call
    wfi_ns: float = 120.0                  # in-process idle-loop handling
    irq_check_ns: float = 40.0             # per-quantum interrupt poll
    exception_ns: float = 150.0            # guest exception bookkeeping


@dataclass(frozen=True)
class SimulationCostParams:
    """Host costs of the SystemC side, identical for both VPs."""

    kernel_overhead_ns_per_window: float = 1500.0   # scheduler, events, channel updates
    peripheral_access_ns: float = 400.0             # register-model dispatch
    parallel_dispatch_ns: float = 2500.0            # worker wake + join per core/window
    parallel_mmio_shift_ns: float = 3000.0          # shifting an access to the main thread
    sequential_loop_ns: float = 200.0               # direct call into simulate()


DEFAULT_KVM_COSTS = KvmCostParams()
DEFAULT_ISS_COSTS = IssCostParams()
DEFAULT_SIM_COSTS = SimulationCostParams()
