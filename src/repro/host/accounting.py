"""Host wall-clock accounting.

The kernel simulates *target* time; this module models *host* time — the
wall-clock seconds the paper's figures report.  Every host-side activity
(guest execution inside KVM_RUN, DBT dispatch, MMIO handling, SystemC
scheduling) bills nanoseconds into a :class:`HostLedger` attributed to a
*lane* and a *quantum window*:

* lane ``MAIN_LANE``: the SystemC main thread;
* lane ``i >= 0``: simulated core ``i``'s worker thread (parallel mode).

At the end of a run the ledger folds windows into total wall time:

* **sequential** mode: everything runs in the main thread, so a window's
  wall time is the *sum* of all its lane contributions;
* **parallel** mode: workers overlap, so a window costs the *maximum* of
  its lanes (the main thread is one of the lanes), plus a per-active-worker
  dispatch/join overhead.

This max-vs-sum fold is the entire semantic content of "parallel execution"
for performance purposes and keeps runs bit-for-bit deterministic.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Optional

from ..systemc.time import SimTime
from .machine import MAIN_LANE, HostMachine
from .params import SimulationCostParams


class HostLedger:
    """Per-window, per-lane modeled host-time bookkeeping."""

    MAIN_LANE = MAIN_LANE

    def __init__(
        self,
        window: SimTime,
        parallel: bool,
        machine: HostMachine,
        num_cores: int,
        sim_costs: Optional[SimulationCostParams] = None,
    ):
        if window.is_zero():
            raise ValueError("ledger window (quantum) must be non-zero")
        self.window_size = window
        self.parallel = parallel
        self.machine = machine
        self.num_cores = num_cores
        self.sim_costs = sim_costs or SimulationCostParams()
        self._windows: Dict[int, Dict[int, float]] = defaultdict(lambda: defaultdict(float))
        self._categories: Dict[str, float] = defaultdict(float)
        self._placement = machine.place_lanes(num_cores, parallel)
        #: optional observer(window, lane, nanoseconds, category) invoked for
        #: every billing event — purely observational (repro.telemetry uses
        #: it to build the host-time span timeline)
        self.observer: Optional[Callable[[int, int, float, str], None]] = None

    # -- billing ------------------------------------------------------------
    def add(self, window: int, lane: int, nanoseconds: float, category: str = "cpu") -> None:
        # Called from inside every core's simulate leg: under the parallel
        # kernel the window table becomes cross-lane shared state (tracked
        # by the race baseline) and must become per-lane sub-ledgers merged
        # at the quantum barrier.
        if nanoseconds <= 0:
            return
        self._windows[window][lane] += nanoseconds
        self._categories[category] += nanoseconds
        if self.observer is not None:
            self.observer(window, lane, nanoseconds, category)

    def lane_speed(self, lane: int) -> float:
        core = self._placement.get(lane)
        return core.speed if core is not None else 1.0

    # -- results ----------------------------------------------------------------
    def window_span_ns(self, lanes: Dict[int, float]) -> float:
        """Fold one window's per-lane totals into its wall-clock extent.

        The single place the max-vs-sum semantics live; both the run total
        below and the telemetry timeline (:class:`repro.telemetry.spans.
        HostTimeline`) use it, so exported spans tile to the same total.
        """
        costs = self.sim_costs
        worker_lanes = [lane for lane in lanes if lane != MAIN_LANE]
        if self.parallel:
            span = max(lanes.values()) if lanes else 0.0
            span += costs.parallel_dispatch_ns * len(worker_lanes)
        else:
            span = sum(lanes.values())
            span += costs.sequential_loop_ns * max(1, len(worker_lanes))
        return span + costs.kernel_overhead_ns_per_window

    def wall_time_ns(self) -> float:
        """Fold all windows into total modeled host wall-clock time."""
        return sum(self.window_span_ns(lanes) for lanes in self._windows.values())

    def wall_time_seconds(self) -> float:
        return self.wall_time_ns() / 1e9

    def category_totals(self) -> Dict[str, float]:
        return dict(self._categories)

    def windows(self) -> Dict[int, Dict[int, float]]:
        """Per-window lane totals, in first-billing (insertion) order.

        Read-only copy for observers (``repro.obs`` folds it into phase
        attributions).  Iteration order matters: :meth:`wall_time_ns` sums
        window spans in this order, so a consumer that re-folds the windows
        in the same order reproduces the total bit-for-bit.
        """
        return {window: dict(lanes) for window, lanes in self._windows.items()}

    def window_count(self) -> int:
        return len(self._windows)

    def busiest_lane(self) -> Optional[int]:
        totals: Dict[int, float] = defaultdict(float)
        for lanes in self._windows.values():
            for lane, nanoseconds in lanes.items():
                totals[lane] += nanoseconds
        if not totals:
            return None
        return max(totals, key=lambda lane: totals[lane])

    def reset(self) -> None:
        self._windows.clear()
        self._categories.clear()

    # -- snapshot support ---------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Serializable ledger content in *insertion* order.

        Unlike set-typed device state, insertion order here is semantic:
        :meth:`wall_time_ns` folds windows in first-billing order, so the
        snapshot must preserve it rather than sort (it is deterministic for
        a deterministic run, which is all canonical bytes require).
        """
        return {
            "windows": [[window, [[lane, ns] for lane, ns in lanes.items()]]
                        for window, lanes in self._windows.items()],
            "categories": [[category, ns] for category, ns
                           in self._categories.items()],
        }

    def restore_state(self, state: dict) -> None:
        self._windows.clear()
        for window, lanes in state["windows"]:
            bucket = self._windows[window]
            for lane, ns in lanes:
                bucket[lane] = ns
        self._categories.clear()
        for category, ns in state["categories"]:
            self._categories[category] = ns

    def __repr__(self) -> str:
        return (
            f"HostLedger(windows={len(self._windows)}, parallel={self.parallel}, "
            f"wall={self.wall_time_seconds():.6f}s)"
        )


class MeasuredLedger:
    """Real wall-clock measurements from the parallel quantum executor.

    The :class:`HostLedger` above *models* host time; this ledger records
    what the executor actually measured: per-leg wall time (summed into the
    serialized total — what a one-lane host would have paid) and per-round
    wall time (what the backend's concurrent round actually took, including
    dispatch/join overhead).  ``speedup()`` is the measured counterpart of
    the attribution report's projected Σbusy/max-busy figure; on a
    GIL-bound interpreter it hovers near (or below) 1.0 by construction,
    which is exactly the honest number to print next to the projection.

    Purely observational: nothing here feeds back into simulation state or
    the determinism digests.
    """

    def __init__(self, backend: str):
        self.backend = backend
        self.rounds = 0
        self.legs = 0
        self.max_lanes = 0
        self.serialized_ns = 0.0   # Σ individual leg wall times
        self.wall_ns = 0.0         # Σ per-round elapsed wall time

    def record_round(self, leg_wall_ns, round_wall_ns: float) -> None:
        self.rounds += 1
        self.legs += len(leg_wall_ns)
        self.max_lanes = max(self.max_lanes, len(leg_wall_ns))
        self.serialized_ns += sum(leg_wall_ns)
        self.wall_ns += round_wall_ns

    def speedup(self) -> float:
        """Measured serialized-over-wall ratio (1.0 when nothing ran)."""
        if self.wall_ns <= 0:
            return 1.0
        return self.serialized_ns / self.wall_ns

    def to_json(self) -> dict:
        return {
            "backend": self.backend,
            "rounds": self.rounds,
            "legs": self.legs,
            "max_lanes": self.max_lanes,
            "serialized_ns": self.serialized_ns,
            "wall_ns": self.wall_ns,
            "speedup": self.speedup(),
        }

    def __repr__(self) -> str:
        return (f"MeasuredLedger({self.backend!r}, rounds={self.rounds}, "
                f"speedup={self.speedup():.2f}x)")
