"""Host modeling: machine descriptions, calibrated cost parameters, and the
wall-clock ledger that turns billed host work into the figures' seconds."""

from .accounting import HostLedger
from .machine import MAIN_LANE, CoreKind, HostCore, HostMachine, amd_ryzen_3900x, apple_m2_pro
from .params import (
    DEFAULT_ISS_COSTS,
    DEFAULT_KVM_COSTS,
    DEFAULT_SIM_COSTS,
    IssCostParams,
    KvmCostParams,
    SimulationCostParams,
)
from .wallclock import elapsed_since, wall_clock

__all__ = [
    "CoreKind",
    "DEFAULT_ISS_COSTS",
    "DEFAULT_KVM_COSTS",
    "DEFAULT_SIM_COSTS",
    "HostCore",
    "HostLedger",
    "HostMachine",
    "IssCostParams",
    "KvmCostParams",
    "MAIN_LANE",
    "SimulationCostParams",
    "amd_ryzen_3900x",
    "apple_m2_pro",
    "elapsed_since",
    "wall_clock",
]
