"""The one sanctioned doorway to the host's real clock.

Simulation code must be a deterministic function of its inputs, so reading
host time anywhere in a simulation path is a lint error (RPR001).  Code
that legitimately measures *real* elapsed time — the benchmark harness
timing how long a Python run took — imports :func:`wall_clock` from here
instead of ``time`` directly, which keeps the allowlist auditable: grep for
``wall_clock`` and you have every host-time consumer.
"""

from __future__ import annotations

import time


def wall_clock() -> float:
    """Monotonic host seconds; only for measuring real elapsed time."""
    return time.perf_counter()


def elapsed_since(start: float) -> float:
    """Real seconds elapsed since a previous :func:`wall_clock` reading."""
    return time.perf_counter() - start


def pause(seconds: float) -> None:
    """Block the calling host thread for real ``seconds``.

    Only for host-side consumers polling an external source (the live
    ``repro.obs top`` view tailing a stream file) — never inside the
    cooperative kernel, where blocking the host thread stalls every
    simulated process (RPR002).
    """
    time.sleep(seconds)


def utc_timestamp() -> str:
    """Current UTC time as ``YYYY-mm-ddTHH:MM:SSZ``.

    Only for labeling host-side artifacts (bench history entries, report
    headers) — never for anything a simulation result depends on.
    """
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
