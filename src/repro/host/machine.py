"""Host machine models.

Describes the physical machine a VP runs on: how many cores, which are
performance vs efficiency cores, and how simulation lanes (the main SystemC
thread plus one worker per simulated core in parallel mode) are placed onto
them.  Lane placement is what produces the octa-core dip in Fig. 5: an
M2 Pro has six performance cores, so a main thread plus eight workers spills
three workers onto efficiency cores.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

MAIN_LANE = -1


class CoreKind(enum.Enum):
    PERFORMANCE = "performance"
    EFFICIENCY = "efficiency"


@dataclass(frozen=True)
class HostCore:
    name: str
    kind: CoreKind
    frequency_ghz: float
    #: relative execution-speed factor (1.0 = reference performance core)
    speed: float = 1.0


@dataclass
class HostMachine:
    """A host with a fixed set of cores and a lane-placement policy."""

    name: str
    cores: List[HostCore] = field(default_factory=list)

    @property
    def performance_cores(self) -> List[HostCore]:
        return [core for core in self.cores if core.kind is CoreKind.PERFORMANCE]

    @property
    def efficiency_cores(self) -> List[HostCore]:
        return [core for core in self.cores if core.kind is CoreKind.EFFICIENCY]

    def place_lanes(self, num_core_lanes: int, parallel: bool) -> Dict[int, HostCore]:
        """Assign simulation lanes to host cores.

        Returns a mapping lane -> host core.  Lane ``MAIN_LANE`` is the
        SystemC main thread; lanes 0..N-1 are per-simulated-core workers.
        In sequential mode every lane maps to the same (fastest) core, since
        all work runs in the main thread.  In parallel mode the main thread
        takes the first performance core and workers fill the remaining
        performance cores before spilling onto efficiency cores.
        """
        ordered = sorted(self.cores, key=lambda core: -core.speed)
        if not ordered:
            raise ValueError(f"host machine {self.name!r} has no cores")
        placement: Dict[int, HostCore] = {MAIN_LANE: ordered[0]}
        if not parallel:
            for lane in range(num_core_lanes):
                placement[lane] = ordered[0]
            return placement
        pool = ordered[1:] + ordered[:1]   # main thread took ordered[0]
        for lane in range(num_core_lanes):
            placement[lane] = pool[lane % len(pool)] if pool else ordered[0]
        return placement

    def lane_speed(self, lane: int, num_core_lanes: int, parallel: bool) -> float:
        return self.place_lanes(num_core_lanes, parallel)[lane].speed


def apple_m2_pro() -> HostMachine:
    """The paper's AoA host: Mac mini, M2 Pro, 6P (Avalanche) + 4E (Blizzard)."""
    cores = [
        HostCore(f"avalanche{i}", CoreKind.PERFORMANCE, 3.7, speed=1.0) for i in range(6)
    ] + [
        HostCore(f"blizzard{i}", CoreKind.EFFICIENCY, 3.4, speed=1.0 / 1.8) for i in range(4)
    ]
    return HostMachine("Apple M2 Pro (Mac mini)", cores)


def amd_ryzen_3900x() -> HostMachine:
    """The paper's ISS host: AMD Ryzen 9 3900X, 12 uniform cores."""
    cores = [HostCore(f"zen2-{i}", CoreKind.PERFORMANCE, 3.8, speed=1.0) for i in range(12)]
    return HostMachine("AMD Ryzen 9 3900X", cores)
