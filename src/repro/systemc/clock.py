"""Clock and reset helpers.

Virtual platforms rarely need a toggling clock signal; what the CPU and
peripheral models consume is the clock *frequency* (to convert cycle counts
to time).  :class:`Clock` therefore models a frequency source that can also
produce posedge events on demand for models that want them, without burning
scheduler events when nobody listens — the same optimization VCML applies.
"""

from __future__ import annotations

from typing import Optional

from .event import Event
from .kernel import Kernel, current_kernel
from .time import SimTime


class Clock:
    """A frequency source with an optional generated posedge event stream."""

    def __init__(self, name: str, frequency_hz: float, kernel: Optional[Kernel] = None):
        if frequency_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {frequency_hz}")
        self.name = name
        self._kernel = kernel or current_kernel()
        self._frequency = float(frequency_hz)
        self.posedge = Event(f"{name}.posedge", self._kernel)
        self._ticking = False

    @property
    def frequency_hz(self) -> float:
        return self._frequency

    @frequency_hz.setter
    def frequency_hz(self, value: float) -> None:
        if value <= 0:
            raise ValueError(f"clock frequency must be positive, got {value}")
        self._frequency = float(value)

    @property
    def period(self) -> SimTime:
        return SimTime.from_frequency(self._frequency)

    def cycles_to_time(self, cycles: int) -> SimTime:
        """Duration of ``cycles`` clock cycles."""
        return SimTime(round(cycles * 1_000_000_000_000 / self._frequency))

    def time_to_cycles(self, duration: SimTime) -> int:
        """Whole cycles that fit in ``duration`` (floor)."""
        return int(duration.to_seconds() * self._frequency)

    def start_ticking(self) -> None:
        """Generate posedge events every period (only if a model needs them)."""
        if self._ticking:
            return
        self._ticking = True
        self._schedule_tick()

    def stop_ticking(self) -> None:
        self._ticking = False

    def _schedule_tick(self) -> None:
        if not self._ticking:
            return
        # Bound method, not a closure: pending ticks in the timed heap must
        # be introspectable (owner + method name) for repro.snapshot.
        self._kernel.schedule_callback(self.period, self._tick)

    def _tick(self) -> None:
        if self._ticking:
            self.posedge.notify(delay=None)
            self._schedule_tick()

    def __repr__(self) -> str:
        return f"Clock({self.name!r}, {self._frequency / 1e6:g} MHz)"


class Reset:
    """An active-high reset line."""

    def __init__(self, name: str = "rst", kernel: Optional[Kernel] = None):
        self.name = name
        self._kernel = kernel or current_kernel()
        self._asserted = False
        self.asserted_event = Event(f"{name}.asserted", self._kernel)
        self.deasserted_event = Event(f"{name}.deasserted", self._kernel)

    @property
    def asserted(self) -> bool:
        return self._asserted

    def assert_reset(self) -> None:
        if not self._asserted:
            self._asserted = True
            self.asserted_event.notify(delay=None)

    def deassert_reset(self) -> None:
        if self._asserted:
            self._asserted = False
            self.deasserted_event.notify(delay=None)
