"""Quantum-scoped parallel execution of per-core simulate legs.

The paper's scheme runs every core's ``simulate(cycles)`` leg concurrently
and synchronizes only at quantum boundaries.  This module implements that
scheme on top of the cooperative kernel without giving up bit-for-bit
determinism:

* :class:`QuantumExecutor` collects one :class:`Leg` per core as the
  processor SC_THREADs submit their quantum work, then runs the whole round
  when the kernel's runnable queue drains (``Kernel.barrier_hook``).
* While a leg runs, every cross-lane effect — kernel event notifications,
  update requests, timed scheduling, IRQ line writes, host-time billing —
  is *captured* into the leg's :class:`LaneLog` instead of being applied
  (see the leg checks in :mod:`repro.systemc.kernel` and
  :class:`repro.systemc.signal.IrqLine`).  At the barrier the logs replay
  on the main thread in canonical order: lane id first, intra-lane capture
  sequence second.
* Shared *data* (guest RAM, TLM transports, DMI bookkeeping) cannot be
  deferred — a leg needs its MMIO read data immediately — so those paths
  funnel through :func:`repro.systemc.kernel.enter_shared_section`: a
  lane-ordered commit token.  A leg's first shared access blocks until all
  lower-numbered lanes' legs have completed, and the token is held until
  the leg ends.  Shared-data access order is therefore *exactly* the serial
  order; only the pre-token portions of legs (pure guest compute, vcpu
  state, watchdog arming) overlap.

Backends:

``serial``
    The reference: legs run inline on the main thread, one lane at a time,
    but through the same capture/merge machinery — the determinism oracle
    the thread backend is gated against (``repro.divergence execcheck``).
``threads``
    One persistent daemon worker per lane; real host concurrency for the
    pre-token leg portions (and for everything once free-threaded builds
    land).  ``delay_hook`` injects per-lane scheduling jitter for the
    schedule-independence stress tests.
``free-threaded`` / ``subinterpreters``
    Stubs for PEP 703 no-GIL builds and per-lane subinterpreters, gated
    behind ``REPRO_PARALLEL_EXPERIMENTAL=1``.

Both live backends produce identical kernel dispatch streams by
construction: same submission order, same commit-token order, same merge
order.  The divergence gate verifies it end to end.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import Callable, Dict, List, Optional

from ..host.accounting import MeasuredLedger
from ..host.wallclock import wall_clock
from .kernel import Kernel, _set_current_leg, set_ambient_kernel

#: backends create_executor accepts (None/"off"/"legacy" mean: no executor)
BACKENDS = ("serial", "threads", "free-threaded", "subinterpreters")
EXPERIMENTAL_ENV = "REPRO_PARALLEL_EXPERIMENTAL"


class LaneLog:
    """Ordered per-lane effect queue: capture in the leg, replay at merge."""

    __slots__ = ("lane", "entries")

    def __init__(self, lane: int):
        self.lane = lane
        self.entries: List[Callable[[], None]] = []

    def capture(self, thunk: Callable[[], None]) -> None:
        # Append order *is* the intra-lane sequence: only the lane's own
        # worker appends, and replay walks the list front to back.
        self.entries.append(thunk)

    def replay(self) -> None:
        for thunk in self.entries:
            thunk()
        self.entries.clear()


class _CommitGate:
    """The lane-ordered commit token for one round of legs.

    ``acquire(lane)`` blocks until every participating lane below ``lane``
    has *finished* its leg; ``finish(lane)`` (always called, exactly once,
    when a leg ends) releases the token to the next lane.  A leg that never
    touches shared state still advances the gate on completion.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._order: List[int] = []
        self._done: set = set()
        self._index = 0

    def start_round(self, lanes: List[int]) -> None:
        with self._cond:
            self._order = list(lanes)
            self._done = set()
            self._index = 0

    def acquire(self, lane: int) -> None:
        with self._cond:
            while self._order[self._index] != lane:
                self._cond.wait()

    def finish(self, lane: int) -> None:
        with self._cond:
            self._done.add(lane)
            while (self._index < len(self._order)
                    and self._order[self._index] in self._done):
                self._index += 1
            self._cond.notify_all()


class Leg:
    """One core's simulate work for the current quantum round."""

    __slots__ = ("lane", "cpu", "cycles", "done", "log", "result",
                 "exception", "wall_ns", "gate", "token_held", "host_done")

    def __init__(self, lane: int, cpu, cycles: int, done_event):
        self.lane = lane
        self.cpu = cpu
        self.cycles = cycles
        self.done = done_event            # kernel Event the SC_THREAD waits on
        self.log = LaneLog(lane)
        self.result = None
        self.exception: Optional[BaseException] = None
        self.wall_ns = 0.0
        self.gate: Optional[_CommitGate] = None
        self.token_held = False
        self.host_done: Optional[threading.Event] = None

    # -- used by the kernel's leg checks -----------------------------------
    def capture(self, thunk: Callable[[], None]) -> None:
        self.log.capture(thunk)

    def enter_shared_section(self) -> None:
        if self.token_held or self.gate is None:
            return
        self.gate.acquire(self.lane)
        self.token_held = True

    # -- used by the processor SC_THREAD -----------------------------------
    def take_result(self):
        """The leg's SimulateResult; re-raises a worker exception in the
        SC_THREAD so it reaches kernel dispatch (and the error_hook)."""
        if self.exception is not None:
            exception, self.exception = self.exception, None
            raise exception
        if self.result is None:
            raise RuntimeError(
                f"leg for lane {self.lane} has no result; the quantum "
                f"barrier has not run it yet")
        return self.result


class QuantumExecutor:
    """Base executor: leg submission, the barrier round, the merge."""

    backend = "abstract"

    def __init__(self, kernel: Kernel, num_lanes: int):
        self.kernel = kernel
        self.num_lanes = num_lanes
        self.measured = MeasuredLedger(self.backend)
        self.rounds = 0
        self._pending: Dict[int, Leg] = {}
        self._done_events: Dict[int, object] = {}
        #: test seam: called as delay_hook(lane, round_no) in the worker
        #: right before the leg body runs (schedule-randomization stress)
        self.delay_hook: Optional[Callable[[int, int], None]] = None

    # -- submission ---------------------------------------------------------
    def submit(self, cpu, cycles: int) -> Leg:
        """Register one core's quantum leg; the SC_THREAD then waits on
        ``leg.done`` until the barrier has run and merged the round."""
        lane = cpu.core_id
        if lane in self._pending:
            raise RuntimeError(
                f"lane {lane} already has a pending leg this round")
        done = self._done_events.get(lane)
        if done is None:
            done = self.kernel.event(f"lane{lane}.leg_done")
            self._done_events[lane] = done
        leg = Leg(lane, cpu, cycles, done)
        self._pending[lane] = leg
        return leg

    # -- the quantum barrier -------------------------------------------------
    def barrier(self) -> bool:
        """Kernel ``barrier_hook``: run pending legs, merge, wake submitters.

        Returns False when no legs are pending (the kernel proceeds to its
        time advance), True after a round ran (the kernel re-enters the
        delta cycle at the same simulation time).
        """
        if not self._pending:
            return False
        legs, self._pending = self._pending, {}
        lanes = sorted(legs)
        round_no = self.rounds
        self.rounds += 1
        started = wall_clock()
        self._run_round([legs[lane] for lane in lanes], round_no)
        round_wall_ns = (wall_clock() - started) * 1e9
        # Canonical merge: lane id first, intra-lane capture sequence second.
        for lane in lanes:
            legs[lane].log.replay()
        # Wake every submitter (immediate notify in barrier context); the
        # next delta cycle resumes them in lane order.
        for lane in lanes:
            legs[lane].done.notify(delay=None)
        self.measured.record_round(
            [legs[lane].wall_ns for lane in lanes], round_wall_ns)
        return True

    def _run_round(self, legs: List[Leg], round_no: int) -> None:
        raise NotImplementedError

    # -- one leg, any backend -------------------------------------------------
    def _run_leg(self, leg: Leg, round_no: int) -> None:
        """Execute one leg with capture active and billing deferred."""
        cpu = leg.cpu
        # Defer the *outermost* billing callable (which may be the obs
        # wrapper) so the whole chain replays at the merge: host-ledger
        # floats and the attribution fold are main-thread-only state.
        had_override = "bill_host_time" in cpu.__dict__
        bound = cpu.bill_host_time

        def deferred_bill(nanoseconds, category="cpu", main_thread=False):
            leg.capture(lambda: bound(nanoseconds, category, main_thread))

        cpu.bill_host_time = deferred_bill
        _set_current_leg(leg)
        started = wall_clock()
        try:
            hook = self.delay_hook
            if hook is not None:
                hook(leg.lane, round_no)
            leg.result = cpu._invoke_simulate(leg.cycles)
        except BaseException as exception:
            leg.exception = exception
        finally:
            leg.wall_ns = (wall_clock() - started) * 1e9
            _set_current_leg(None)
            if had_override:
                cpu.bill_host_time = bound
            else:
                del cpu.__dict__["bill_host_time"]
            if leg.gate is not None:
                leg.gate.finish(leg.lane)
            if leg.host_done is not None:
                leg.host_done.set()

    # -- lifecycle -----------------------------------------------------------
    def shutdown(self) -> None:
        """Release backend resources (idempotent; serial has none)."""

    def stats(self) -> dict:
        return self.measured.to_json()


class SerialExecutor(QuantumExecutor):
    """Reference backend: legs run inline, in lane order, on the main
    thread — through the identical capture/merge path as ``threads``."""

    backend = "serial"

    def _run_round(self, legs: List[Leg], round_no: int) -> None:
        for leg in legs:
            self._run_leg(leg, round_no)


class ThreadExecutor(QuantumExecutor):
    """One persistent daemon worker thread per lane."""

    backend = "threads"

    def __init__(self, kernel: Kernel, num_lanes: int):
        super().__init__(kernel, num_lanes)
        self._gate = _CommitGate()
        self._queues: Dict[int, "queue.Queue"] = {}
        self._workers: Dict[int, threading.Thread] = {}
        self._shut_down = False

    def _ensure_worker(self, lane: int) -> "queue.Queue":
        lane_queue = self._queues.get(lane)
        if lane_queue is None:
            if self._shut_down:
                raise RuntimeError("executor already shut down")
            lane_queue = queue.Queue()
            worker = threading.Thread(
                target=self._worker, args=(lane_queue,),
                name=f"repro-lane{lane}", daemon=True)
            self._queues[lane] = lane_queue
            self._workers[lane] = worker
            worker.start()
        return lane_queue

    def _worker(self, lane_queue: "queue.Queue") -> None:
        # Worker threads inherit nothing from the main thread's
        # threading.local slots: adopt the platform's kernel explicitly.
        set_ambient_kernel(self.kernel)
        while True:
            item = lane_queue.get()
            if item is None:
                return
            leg, round_no = item
            self._run_leg(leg, round_no)

    def _run_round(self, legs: List[Leg], round_no: int) -> None:
        self._gate.start_round([leg.lane for leg in legs])
        for leg in legs:
            leg.gate = self._gate
            leg.host_done = threading.Event()
            self._ensure_worker(leg.lane).put((leg, round_no))
        for leg in legs:
            leg.host_done.wait()

    def shutdown(self) -> None:
        if self._shut_down:
            return
        self._shut_down = True
        for lane_queue in self._queues.values():
            lane_queue.put(None)
        for worker in self._workers.values():
            worker.join(timeout=5.0)
        self._queues.clear()
        self._workers.clear()


class FreeThreadedExecutor(ThreadExecutor):
    """Stub for PEP 703 free-threaded CPython builds.

    Functionally identical to :class:`ThreadExecutor` today; on a no-GIL
    build the pre-token leg portions genuinely run in parallel.  Gated
    behind ``REPRO_PARALLEL_EXPERIMENTAL=1`` until such builds are a
    supported target.
    """

    backend = "free-threaded"


class SubinterpreterExecutor(QuantumExecutor):
    """Stub for per-lane subinterpreters (PEP 734).

    Simulate legs share the platform object graph by reference, which
    subinterpreters cannot do without a shared-memory redesign; the stub
    exists so the backend matrix and the feature flag are in place.
    """

    backend = "subinterpreters"

    def _run_round(self, legs: List[Leg], round_no: int) -> None:
        raise NotImplementedError(
            "the subinterpreter backend is a stub: per-lane interpreters "
            "cannot share the platform object graph yet")


def experimental_enabled() -> bool:
    return os.environ.get(EXPERIMENTAL_ENV, "").strip() not in ("", "0")


def create_executor(backend: str, kernel: Kernel,
                    num_lanes: int) -> QuantumExecutor:
    """Build the executor for one platform; raises on unknown/gated names."""
    if backend == "serial":
        return SerialExecutor(kernel, num_lanes)
    if backend == "threads":
        return ThreadExecutor(kernel, num_lanes)
    if backend in ("free-threaded", "subinterpreters"):
        if not experimental_enabled():
            raise ValueError(
                f"backend {backend!r} is experimental; set "
                f"{EXPERIMENTAL_ENV}=1 to enable it")
        if backend == "free-threaded":
            return FreeThreadedExecutor(kernel, num_lanes)
        return SubinterpreterExecutor(kernel, num_lanes)
    raise ValueError(
        f"unknown parallel backend {backend!r} (want one of {BACKENDS})")
