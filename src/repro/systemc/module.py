"""Hierarchical modules (``sc_module``).

Modules form a named hierarchy.  Each module can declare SC_THREAD-like
processes, create events, and own submodules.  Unlike SystemC there is no
separate elaboration phase enforced by the language; the convention in this
library is that the constructor builds the hierarchy and ``Kernel.run`` starts
it.  Modules may override :meth:`end_of_elaboration` and
:meth:`start_of_simulation`; :class:`Simulation` invokes them before running.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from .event import Event
from .kernel import Kernel, current_kernel
from .process import Process
from .time import SimTime


class Module:
    """Base class for all hierarchical simulation models."""

    def __init__(self, name: str, parent: Optional["Module"] = None):
        self.basename = name
        self.parent = parent
        self.children: List["Module"] = []
        if parent is not None:
            parent.children.append(self)
            self.name = f"{parent.name}.{name}"
            self._kernel = parent._kernel
        else:
            self.name = name
            self._kernel = current_kernel()

    # -- kernel access ------------------------------------------------------
    @property
    def kernel(self) -> Kernel:
        return self._kernel

    @property
    def now(self) -> SimTime:
        return self._kernel.now

    # -- process / event helpers ---------------------------------------------
    def sc_thread(self, body: Callable[[], Generator], name: Optional[str] = None) -> Process:
        pname = f"{self.name}.{name or getattr(body, '__name__', 'thread')}"
        return self._kernel.spawn(body, pname)

    def sc_method(self, callback: Callable[[], None], sensitive_to=(), name: Optional[str] = None):
        mname = f"{self.name}.{name or getattr(callback, '__name__', 'method')}"
        return self._kernel.create_method(callback, mname, sensitive_to)

    def sc_event(self, name: str = "event") -> Event:
        return Event(f"{self.name}.{name}", self._kernel)

    # -- elaboration hooks -----------------------------------------------------
    def end_of_elaboration(self) -> None:
        """Called once on every module before simulation starts."""

    def start_of_simulation(self) -> None:
        """Called once on every module right before the first delta cycle."""

    def iter_hierarchy(self):
        """Yield this module and all descendants depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_hierarchy()

    def find_child(self, path: str) -> Optional["Module"]:
        """Find a descendant by dotted basename path (e.g. ``"vp.uart"``)."""
        head, _, rest = path.partition(".")
        for child in self.children:
            if child.basename == head:
                return child if not rest else child.find_child(rest)
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Simulation:
    """Owns a kernel plus a module hierarchy and drives elaboration + run."""

    def __init__(self):
        self.kernel = Kernel()
        self.top_modules: List[Module] = []
        self._elaborated = False

    def register_top(self, module: Module) -> Module:
        self.top_modules.append(module)
        return module

    def elaborate(self) -> None:
        if self._elaborated:
            return
        for top in self.top_modules:
            for module in top.iter_hierarchy():
                module.end_of_elaboration()
        for top in self.top_modules:
            for module in top.iter_hierarchy():
                module.start_of_simulation()
        self._elaborated = True

    def run(self, duration: Optional[SimTime] = None) -> SimTime:
        self.elaborate()
        return self.kernel.run(duration)

    def stop(self) -> None:
        self.kernel.stop()
