"""The discrete-event simulation kernel.

Implements the SystemC scheduling semantics (IEEE 1666):

1. *Evaluation phase*: run every runnable process until it waits.
2. *Update phase*: apply primitive-channel (signal) update requests.
3. *Delta notification phase*: mature delta notifications; if any process
   became runnable, start a new delta cycle at the same simulation time.
4. *Time advance*: pop the earliest timed notification(s) and continue.

Processes are cooperative generators (see :mod:`repro.systemc.process`); the
whole kernel is single-threaded and fully deterministic.  The "parallel
execution" of CPU cores from the paper is modeled through the host-time
ledger (:mod:`repro.host.accounting`), not host threads, which keeps runs
reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Deque, Generator, List, Optional, Set

from .event import Event
from .process import MethodProcess, Process, ProcessState
from .time import SimTime

_current_kernel: Optional["Kernel"] = None


def current_kernel() -> "Kernel":
    """Return the kernel currently elaborating or simulating."""
    if _current_kernel is None:
        raise RuntimeError("no active simulation kernel; create a Kernel first")
    return _current_kernel


class _TimedEntry:
    """A cancellable entry in the timed-notification heap."""

    __slots__ = ("due", "seq", "action", "cancelled")

    def __init__(self, due: SimTime, seq: int, action: Callable[[], None]):
        self.due = due
        self.seq = seq
        self.action = action
        self.cancelled = False

    def __lt__(self, other: "_TimedEntry") -> bool:
        if self.due.picoseconds != other.due.picoseconds:
            return self.due.picoseconds < other.due.picoseconds
        return self.seq < other.seq


class SimulationStopped(Exception):
    """Raised internally when ``Kernel.stop()`` is requested mid-cycle."""


class TraceHookHandle:
    """Opaque handle returned by :meth:`Kernel.add_trace_hook`."""

    __slots__ = ("hook", "priority", "seq")

    def __init__(self, hook: Callable[[str, int, str], None], priority: int, seq: int):
        self.hook = hook
        self.priority = priority
        self.seq = seq


class _TraceHookChain:
    """Priority-ordered fan-out for the class-level ``Kernel.trace_hook``.

    Historically the class-level hook was a single slot, so observers that
    needed to coexist (the SAN005 lane/window tagger, the DET001 digester)
    had to shadow each other in attach order — append-only and fragile.
    The chain replaces that: each observer registers with an explicit
    priority, and dispatch always runs lower priorities first regardless of
    attach order.  Ties dispatch in attach order.

    The documented priority bands are on :class:`Kernel`:

    * ``TRACE_PRIORITY_TAGGER`` (10) — context taggers that annotate the
      current dispatch for *later* hooks (SAN005's lane/window tagger).
    * ``TRACE_PRIORITY_DIGEST`` (20) — digesters that must observe the
      dispatch stream exactly as the kernel emitted it (DET001).
    * ``TRACE_PRIORITY_OBSERVER`` (30, default) — everything else.

    ``dispatch`` is a *bound method* on purpose: storing it in the class
    attribute ``Kernel.trace_hook`` must not turn it into a descriptor that
    re-binds to the kernel instance at lookup time.
    """

    def __init__(self):
        self._entries: List[TraceHookHandle] = []
        self._seq = itertools.count()

    def add(self, hook: Callable[[str, int, str], None], priority: int) -> TraceHookHandle:
        handle = TraceHookHandle(hook, priority, next(self._seq))
        self._entries.append(handle)
        self._entries.sort(key=lambda h: (h.priority, h.seq))
        return handle

    def remove(self, handle: TraceHookHandle) -> None:
        self._entries = [entry for entry in self._entries if entry is not handle]

    def hooks_at(self, priority: int) -> List[Callable[[str, int, str], None]]:
        return [entry.hook for entry in self._entries if entry.priority == priority]

    def __len__(self) -> int:
        return len(self._entries)

    def dispatch(self, kind: str, time_ps: int, name: str) -> None:
        for entry in self._entries:
            entry.hook(kind, time_ps, name)


_trace_chain = _TraceHookChain()


class Kernel:
    """A single-threaded SystemC-like discrete-event scheduler."""

    #: Optional observer called as ``trace_hook(kind, time_ps, name)`` for
    #: every process step ("step") and method run ("method") the scheduler
    #: dispatches.  Class-level so a checker can observe kernels it did not
    #: create (see repro.analysis.determinism); must never mutate state.
    #: Dispatch sites read the attribute through the instance, so a
    #: per-kernel hook (repro.telemetry) can shadow it — such a hook must
    #: chain to the class-level one to keep the determinism checker fed.
    #:
    #: Multiple class-level observers register through
    #: :meth:`add_trace_hook` with an explicit priority; the slot then
    #: holds the chain's dispatcher.  Direct assignment still works for a
    #: single observer but cannot coexist with the chain.
    trace_hook: Optional[Callable[[str, int, str], None]] = None

    #: trace-hook priority bands (lower runs earlier; see _TraceHookChain).
    #: The SAN005 lane/window tagger must run before the DET001 digester so
    #: the access tags a dispatch produces are in place before the dispatch
    #: is sealed into the determinism digest.
    TRACE_PRIORITY_TAGGER = 10
    TRACE_PRIORITY_DIGEST = 20
    TRACE_PRIORITY_OBSERVER = 30

    #: Optional observer called as ``time_hook(now_ps)`` after every
    #: simulated-time advance (never for delta cycles).  Read through the
    #: instance like ``trace_hook`` so a per-kernel observer (repro.obs uses
    #: it to close quantum windows at exact sim-time boundaries) can shadow
    #: a class default; must never mutate simulation state.
    time_hook: Optional[Callable[[int], None]] = None

    #: Optional observer called as ``error_hook(exc)`` when an exception
    #: escapes the scheduling loop (i.e. a model blew up inside dispatch).
    #: Read through the instance like ``trace_hook`` so a per-kernel hook
    #: (repro.flight's crash bundler) can shadow the class default.  The
    #: exception is re-raised afterwards either way; the hook is a last
    #: look at the wreckage, not a handler.
    error_hook: Optional[Callable[[BaseException], None]] = None

    # -- class-level trace-hook chain --------------------------------------
    @classmethod
    def add_trace_hook(cls, hook: Callable[[str, int, str], None],
                       priority: int = TRACE_PRIORITY_OBSERVER) -> TraceHookHandle:
        """Register a class-level trace observer with an explicit priority.

        Lower ``priority`` values run earlier on every dispatch; equal
        priorities run in attach order.  Use the documented bands
        (``TRACE_PRIORITY_TAGGER`` < ``TRACE_PRIORITY_DIGEST`` <
        ``TRACE_PRIORITY_OBSERVER``) so taggers always precede digesters no
        matter who attached first.  Returns a handle for
        :meth:`remove_trace_hook`.

        Any number of hooks may share one band: ties dispatch in
        deterministic FIFO attach order (the sort key is ``(priority,
        attach sequence)`` and the sort is stable), which is what lets two
        DIGEST-tier observers — the DET001 digester and the
        ``repro.divergence`` window ledger — fold the *same* event stream
        side by side without perturbing each other's digests.
        """
        if cls.trace_hook is not None and cls.trace_hook != _trace_chain.dispatch:
            raise RuntimeError(
                "Kernel.trace_hook is directly assigned; a directly-set hook "
                "cannot coexist with add_trace_hook() observers")
        handle = _trace_chain.add(hook, priority)
        Kernel.trace_hook = _trace_chain.dispatch
        return handle

    @classmethod
    def remove_trace_hook(cls, handle: TraceHookHandle) -> None:
        """Detach a hook registered via :meth:`add_trace_hook`."""
        _trace_chain.remove(handle)
        if not len(_trace_chain) and cls.trace_hook == _trace_chain.dispatch:
            Kernel.trace_hook = None

    @classmethod
    def trace_hooks_at(cls, priority: int) -> List[Callable[[str, int, str], None]]:
        """The hooks currently registered in one priority band (introspection)."""
        return _trace_chain.hooks_at(priority)

    def __init__(self):
        global _current_kernel
        self._now = SimTime.zero()
        self._runnable: Deque[Process] = deque()
        self._runnable_set = set()
        self._delta_events: List[Event] = []
        self._delta_wakeups: List[Process] = []
        self._timed: List[_TimedEntry] = []
        self._seq = itertools.count()
        self._processes: List[Process] = []
        self._methods: Deque[MethodProcess] = deque()
        self._update_requests: List = []
        self._update_request_ids: Set[int] = set()
        self._stop_requested = False
        self._running = False
        self._current_process: Optional[Process] = None
        self.delta_count = 0
        _current_kernel = self

    # -- registration -----------------------------------------------------
    def spawn(self, body: Callable[[], Generator], name: str = "process") -> Process:
        """Create a new SC_THREAD-like process and make it initially runnable."""
        process = Process(name, body, self)
        self._processes.append(process)
        self._make_runnable(process)
        return process

    def create_method(
        self, callback: Callable[[], None], name: str = "method", sensitive_to=()
    ) -> MethodProcess:
        method = MethodProcess(name, callback, self, sensitive_to)
        for event in method.sensitivity:
            event._attach(self)
            event._add_waiter(_MethodWaiter(method))
        return method

    def event(self, name: str = "event") -> Event:
        return Event(name, self)

    # -- state --------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        return self._now

    @property
    def current_process(self) -> Optional[Process]:
        return self._current_process

    def pending_activity(self) -> bool:
        return bool(self._runnable or self._delta_events or self._delta_wakeups or self._timed)

    # -- scheduling hooks (used by Event/Process) ------------------------------
    def _make_runnable(self, process: Process) -> None:
        if process.finished:
            return
        if id(process) not in self._runnable_set:
            self._runnable.append(process)
            self._runnable_set.add(id(process))

    def _trigger_event(self, event: Event) -> None:
        # Immediate notification: wake all waiters right now.
        for waiter in list(event._waiters):
            waiter._wake(self)

    def _schedule_delta_notification(self, event: Event) -> None:
        self._delta_events.append(event)

    def _schedule_delta_wakeup(self, process: Process) -> None:
        self._delta_wakeups.append(process)

    def _schedule_timed_notification(self, event: Event, due: SimTime) -> _TimedEntry:
        entry = _TimedEntry(due, next(self._seq), event._fire)
        heapq.heappush(self._timed, entry)
        return entry

    def _schedule_timed_wakeup(self, process: Process, due: SimTime, timeout: bool = False) -> _TimedEntry:
        entry = _TimedEntry(due, next(self._seq), lambda: process._wake(self, timed_out=timeout))
        heapq.heappush(self._timed, entry)
        return entry

    def schedule_callback(self, delay: SimTime, callback: Callable[[], None]) -> _TimedEntry:
        """Run ``callback`` after ``delay`` simulated time (kernel context)."""
        entry = _TimedEntry(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._timed, entry)
        return entry

    def _queue_method(self, method: MethodProcess) -> None:
        self._methods.append(method)

    def request_update(self, channel) -> None:
        """Primitive-channel update request (``sc_prim_channel``).

        Deduplicated by identity in O(1); the list keeps first-request
        order, which is the order ``_update()`` calls run in.
        """
        if id(channel) not in self._update_request_ids:
            self._update_requests.append(channel)
            self._update_request_ids.add(id(channel))

    # -- control ---------------------------------------------------------------
    def stop(self) -> None:
        self._stop_requested = True

    def run(self, duration: Optional[SimTime] = None) -> SimTime:
        """Run the simulation.

        With ``duration`` the kernel simulates at most that much additional
        time; without it, until no activity remains or :meth:`stop` is
        called.  Returns the simulation time reached.
        """
        global _current_kernel
        _current_kernel = self
        deadline = None if duration is None else self._now + duration
        self._stop_requested = False
        self._running = True
        try:
            while not self._stop_requested:
                self._delta_cycle()
                if self._stop_requested:
                    break
                if self._runnable:
                    continue
                if not self._advance_time(deadline):
                    break
        except Exception as exc:
            hook = self.error_hook
            if hook is not None:
                hook(exc)
            raise
        finally:
            self._running = False
        if (not self._stop_requested and deadline is not None
                and self._now < deadline and not self.pending_activity()):
            self._now = deadline
        return self._now

    # -- internals --------------------------------------------------------------
    def _delta_cycle(self) -> None:
        """One evaluate/update/delta-notify cycle at the current time."""
        progressed = bool(self._runnable or self._methods)
        # Evaluation phase.
        while self._runnable or self._methods:
            while self._methods:
                method = self._methods.popleft()
                hook = self.trace_hook
                if hook is not None:
                    hook("method", self._now.picoseconds, method.name)
                method._run()
            if not self._runnable:
                break
            process = self._runnable.popleft()
            self._runnable_set.discard(id(process))
            if process.finished or process.state == ProcessState.SUSPENDED:
                continue
            self._current_process = process
            try:
                hook = self.trace_hook
                if hook is not None:
                    hook("step", self._now.picoseconds, process.name)
                process._step(self)
            finally:
                self._current_process = None
            if self._stop_requested:
                return
        # Update phase.
        updates, self._update_requests = self._update_requests, []
        self._update_request_ids.clear()
        for channel in updates:
            channel._update()
        # Delta notification phase.
        delta_events, self._delta_events = self._delta_events, []
        delta_wakeups, self._delta_wakeups = self._delta_wakeups, []
        for event in delta_events:
            event._fire()
        for process in delta_wakeups:
            process._wake(self)
        if progressed or delta_events or delta_wakeups:
            self.delta_count += 1

    def _advance_time(self, deadline: Optional[SimTime]) -> bool:
        """Pop the earliest timed entries; return False when simulation ends."""
        while self._timed and self._timed[0].cancelled:
            heapq.heappop(self._timed)
        if not self._timed:
            return False
        due = self._timed[0].due
        if deadline is not None and due > deadline:
            self._now = deadline
            return False
        self._now = due
        hook = self.time_hook
        if hook is not None:
            hook(due.picoseconds)
        while self._timed and self._timed[0].due == due:
            entry = heapq.heappop(self._timed)
            if not entry.cancelled:
                entry.action()
        return True


class _MethodWaiter:
    """Adapter letting a MethodProcess sit in an Event's waiter list."""

    __slots__ = ("method",)

    def __init__(self, method: MethodProcess):
        self.method = method

    def _wake(self, kernel: "Kernel", timed_out: bool = False) -> None:
        self.method.trigger()
