"""The discrete-event simulation kernel.

Implements the SystemC scheduling semantics (IEEE 1666):

1. *Evaluation phase*: run every runnable process until it waits.
2. *Update phase*: apply primitive-channel (signal) update requests.
3. *Delta notification phase*: mature delta notifications; if any process
   became runnable, start a new delta cycle at the same simulation time.
4. *Time advance*: pop the earliest timed notification(s) and continue.

Processes are cooperative generators (see :mod:`repro.systemc.process`); the
scheduler itself always runs single-threaded and fully deterministic.  The
paper's "parallel execution" of CPU cores exists in two forms: the modeled
host-time ledger (:mod:`repro.host.accounting`) and the truly concurrent
per-core simulate legs of :mod:`repro.systemc.parallel` — worker lanes whose
cross-lane effects are captured per lane and merged at the quantum barrier
(``barrier_hook``) in canonical (lane id, intra-lane sequence) order, so the
dispatch stream stays bit-for-bit identical to the serial reference.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque
from typing import Callable, Deque, Generator, List, Optional, Set

from .event import Event
from .process import MethodProcess, Process, ProcessState
from .time import SimTime


class _KernelContext(threading.local):
    """Per-thread kernel resolution state.

    ``ambient`` is the most recently constructed (or explicitly adopted)
    kernel on this thread — the elaboration-time default.  ``stack`` tracks
    nested :meth:`Kernel.run` calls so a kernel running inside another
    kernel's process (or on a worker thread) never clobbers its neighbour:
    the stack top always wins over the ambient kernel.  ``leg`` is the
    active per-core simulate leg (see :mod:`repro.systemc.parallel`); when
    set, scheduler entry points capture their effects into the leg's log
    instead of mutating kernel state from a worker thread.
    """

    def __init__(self):
        self.ambient: Optional["Kernel"] = None
        self.stack: List["Kernel"] = []
        self.leg = None


_context = _KernelContext()


def current_kernel() -> "Kernel":
    """Return the kernel currently elaborating or simulating on this thread."""
    if _context.stack:
        return _context.stack[-1]
    if _context.ambient is None:
        raise RuntimeError("no active simulation kernel; create a Kernel first")
    return _context.ambient


def set_ambient_kernel(kernel: Optional["Kernel"]) -> None:
    """Adopt ``kernel`` as this thread's elaboration-time default.

    Worker threads (the parallel executor's lanes) inherit nothing from the
    main thread's :class:`threading.local` slot, so the executor adopts the
    platform's kernel before running simulate legs.
    """
    _context.ambient = kernel


def current_leg():
    """The simulate leg active on this thread, or None (barrier context)."""
    return _context.leg


def _set_current_leg(leg) -> None:
    """Install/clear the thread's active leg (repro.systemc.parallel only)."""
    _context.leg = leg


def enter_shared_section() -> None:
    """Announce that the calling code is about to touch cross-lane state.

    No-op in barrier context.  Inside a simulate leg this blocks until every
    lower-numbered lane's leg of the current round has completed (the
    lane-ordered commit token), which makes all shared-state access — guest
    RAM, TLM transports, DMI bookkeeping — observe exactly the order the
    serial reference executes in.  The token is held until the leg ends.
    """
    leg = _context.leg
    if leg is not None:
        leg.enter_shared_section()


class _ProcessWakeup:
    """The timed-heap action that wakes a waiting process.

    A plain class instead of a closure so the snapshot subsystem
    (:mod:`repro.snapshot`) can introspect pending wakeups — which process,
    and whether the entry is a timeout — and re-create them verbatim when a
    saved event queue is restored into a fresh kernel.
    """

    __slots__ = ("kernel", "process", "timeout")

    def __init__(self, kernel: "Kernel", process: Process, timeout: bool):
        self.kernel = kernel
        self.process = process
        self.timeout = timeout

    def __call__(self) -> None:
        self.process._wake(self.kernel, timed_out=self.timeout)


class _TimedEntry:
    """A cancellable entry in the timed-notification heap."""

    __slots__ = ("due", "seq", "action", "cancelled")

    def __init__(self, due: SimTime, seq: int, action: Callable[[], None]):
        self.due = due
        self.seq = seq
        self.action = action
        self.cancelled = False

    def __lt__(self, other: "_TimedEntry") -> bool:
        if self.due.picoseconds != other.due.picoseconds:
            return self.due.picoseconds < other.due.picoseconds
        return self.seq < other.seq


class SimulationStopped(Exception):
    """Raised internally when ``Kernel.stop()`` is requested mid-cycle."""


class TraceHookHandle:
    """Opaque handle returned by :meth:`Kernel.add_trace_hook`."""

    __slots__ = ("hook", "priority", "seq")

    def __init__(self, hook: Callable[[str, int, str], None], priority: int, seq: int):
        self.hook = hook
        self.priority = priority
        self.seq = seq


class _TraceHookChain:
    """Priority-ordered fan-out for the class-level ``Kernel.trace_hook``.

    Historically the class-level hook was a single slot, so observers that
    needed to coexist (the SAN005 lane/window tagger, the DET001 digester)
    had to shadow each other in attach order — append-only and fragile.
    The chain replaces that: each observer registers with an explicit
    priority, and dispatch always runs lower priorities first regardless of
    attach order.  Ties dispatch in attach order.

    The documented priority bands are on :class:`Kernel`:

    * ``TRACE_PRIORITY_TAGGER`` (10) — context taggers that annotate the
      current dispatch for *later* hooks (SAN005's lane/window tagger).
    * ``TRACE_PRIORITY_DIGEST`` (20) — digesters that must observe the
      dispatch stream exactly as the kernel emitted it (DET001).
    * ``TRACE_PRIORITY_OBSERVER`` (30, default) — everything else.

    ``dispatch`` is a *bound method* on purpose: storing it in the class
    attribute ``Kernel.trace_hook`` must not turn it into a descriptor that
    re-binds to the kernel instance at lookup time.
    """

    def __init__(self):
        self._entries: List[TraceHookHandle] = []
        self._seq = itertools.count()

    def add(self, hook: Callable[[str, int, str], None], priority: int) -> TraceHookHandle:
        handle = TraceHookHandle(hook, priority, next(self._seq))
        self._entries.append(handle)
        self._entries.sort(key=lambda h: (h.priority, h.seq))
        return handle

    def remove(self, handle: TraceHookHandle) -> None:
        self._entries = [entry for entry in self._entries if entry is not handle]

    def hooks_at(self, priority: int) -> List[Callable[[str, int, str], None]]:
        return [entry.hook for entry in self._entries if entry.priority == priority]

    def __len__(self) -> int:
        return len(self._entries)

    def dispatch(self, kind: str, time_ps: int, name: str) -> None:
        for entry in self._entries:
            entry.hook(kind, time_ps, name)


_trace_chain = _TraceHookChain()


class Kernel:
    """A single-threaded SystemC-like discrete-event scheduler."""

    #: Optional observer called as ``trace_hook(kind, time_ps, name)`` for
    #: every process step ("step") and method run ("method") the scheduler
    #: dispatches.  Class-level so a checker can observe kernels it did not
    #: create (see repro.analysis.determinism); must never mutate state.
    #: Dispatch sites read the attribute through the instance, so a
    #: per-kernel hook (repro.telemetry) can shadow it — such a hook must
    #: chain to the class-level one to keep the determinism checker fed.
    #:
    #: Multiple class-level observers register through
    #: :meth:`add_trace_hook` with an explicit priority; the slot then
    #: holds the chain's dispatcher.  Direct assignment still works for a
    #: single observer but cannot coexist with the chain.
    trace_hook: Optional[Callable[[str, int, str], None]] = None

    #: trace-hook priority bands (lower runs earlier; see _TraceHookChain).
    #: The SAN005 lane/window tagger must run before the DET001 digester so
    #: the access tags a dispatch produces are in place before the dispatch
    #: is sealed into the determinism digest.
    TRACE_PRIORITY_TAGGER = 10
    TRACE_PRIORITY_DIGEST = 20
    TRACE_PRIORITY_OBSERVER = 30

    #: Optional observer called as ``time_hook(now_ps)`` after every
    #: simulated-time advance (never for delta cycles).  Read through the
    #: instance like ``trace_hook`` so a per-kernel observer (repro.obs uses
    #: it to close quantum windows at exact sim-time boundaries) can shadow
    #: a class default; must never mutate simulation state.
    time_hook: Optional[Callable[[int], None]] = None

    #: Optional observer called as ``error_hook(exc)`` when an exception
    #: escapes the scheduling loop (i.e. a model blew up inside dispatch).
    #: Read through the instance like ``trace_hook`` so a per-kernel hook
    #: (repro.flight's crash bundler) can shadow the class default.  The
    #: exception is re-raised afterwards either way; the hook is a last
    #: look at the wreckage, not a handler.
    error_hook: Optional[Callable[[BaseException], None]] = None

    # -- class-level trace-hook chain --------------------------------------
    @classmethod
    def add_trace_hook(cls, hook: Callable[[str, int, str], None],
                       priority: int = TRACE_PRIORITY_OBSERVER) -> TraceHookHandle:
        """Register a class-level trace observer with an explicit priority.

        Lower ``priority`` values run earlier on every dispatch; equal
        priorities run in attach order.  Use the documented bands
        (``TRACE_PRIORITY_TAGGER`` < ``TRACE_PRIORITY_DIGEST`` <
        ``TRACE_PRIORITY_OBSERVER``) so taggers always precede digesters no
        matter who attached first.  Returns a handle for
        :meth:`remove_trace_hook`.

        Any number of hooks may share one band: ties dispatch in
        deterministic FIFO attach order (the sort key is ``(priority,
        attach sequence)`` and the sort is stable), which is what lets two
        DIGEST-tier observers — the DET001 digester and the
        ``repro.divergence`` window ledger — fold the *same* event stream
        side by side without perturbing each other's digests.
        """
        if cls.trace_hook is not None and cls.trace_hook != _trace_chain.dispatch:
            raise RuntimeError(
                "Kernel.trace_hook is directly assigned; a directly-set hook "
                "cannot coexist with add_trace_hook() observers")
        handle = _trace_chain.add(hook, priority)
        Kernel.trace_hook = _trace_chain.dispatch
        return handle

    @classmethod
    def remove_trace_hook(cls, handle: TraceHookHandle) -> None:
        """Detach a hook registered via :meth:`add_trace_hook`."""
        _trace_chain.remove(handle)
        if not len(_trace_chain) and cls.trace_hook == _trace_chain.dispatch:
            Kernel.trace_hook = None

    @classmethod
    def trace_hooks_at(cls, priority: int) -> List[Callable[[str, int, str], None]]:
        """The hooks currently registered in one priority band (introspection)."""
        return _trace_chain.hooks_at(priority)

    #: Optional barrier callback invoked by :meth:`run` whenever the
    #: runnable queue drains, *before* time advances: the parallel executor
    #: (repro.systemc.parallel) uses it to run the pending simulate legs and
    #: merge their captured effects.  Returns True when legs ran (the loop
    #: then re-enters the delta cycle at the same time), False to proceed to
    #: the time advance.  Instance attribute, set by the platform wiring.
    barrier_hook: Optional[Callable[[], bool]] = None

    def __init__(self):
        self._now = SimTime.zero()
        self._runnable: Deque[Process] = deque()
        self._runnable_set = set()
        self._delta_events: List[Event] = []
        self._delta_wakeups: List[Process] = []
        self._timed: List[_TimedEntry] = []
        self._seq = itertools.count()
        self._processes: List[Process] = []
        self._methods: Deque[MethodProcess] = deque()
        self._update_requests: List = []
        self._update_request_ids: Set[int] = set()
        self._stop_requested = False
        self._running = False
        self._current_process: Optional[Process] = None
        self.delta_count = 0
        _context.ambient = self

    # -- registration -----------------------------------------------------
    def spawn(self, body: Callable[[], Generator], name: str = "process") -> Process:
        """Create a new SC_THREAD-like process and make it initially runnable."""
        process = Process(name, body, self)
        self._processes.append(process)
        self._make_runnable(process)
        return process

    def create_method(
        self, callback: Callable[[], None], name: str = "method", sensitive_to=()
    ) -> MethodProcess:
        method = MethodProcess(name, callback, self, sensitive_to)
        for event in method.sensitivity:
            event._attach(self)
            event._add_waiter(_MethodWaiter(method))
        return method

    def event(self, name: str = "event") -> Event:
        return Event(name, self)

    # -- state --------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        return self._now

    @property
    def current_process(self) -> Optional[Process]:
        return self._current_process

    def pending_activity(self) -> bool:
        return bool(self._runnable or self._delta_events or self._delta_wakeups or self._timed)

    # -- scheduling hooks (used by Event/Process) ------------------------------
    #
    # Every hook that mutates scheduler bookkeeping checks for an active
    # simulate leg first (repro.systemc.parallel): inside a leg the effect
    # is *captured* into the leg's ordered log and replayed verbatim at the
    # quantum barrier in canonical (lane id, intra-lane sequence) order, so
    # worker threads never touch the runnable queue, the delta lists, the
    # timed heap or the update queue directly.  Replay happens on the main
    # thread with no leg active, so the captured closure re-enters the real
    # body below.

    def _make_runnable(self, process: Process) -> None:
        leg = _context.leg
        if leg is not None:
            leg.capture(lambda: self._make_runnable(process))
            return
        if process.finished:
            return
        if id(process) not in self._runnable_set:
            self._runnable.append(process)
            self._runnable_set.add(id(process))

    def _trigger_event(self, event: Event) -> None:
        leg = _context.leg
        if leg is not None:
            leg.capture(lambda: self._trigger_event(event))
            return
        # Immediate notification: wake all waiters right now.
        for waiter in list(event._waiters):
            waiter._wake(self)

    def _schedule_delta_notification(self, event: Event) -> None:
        leg = _context.leg
        if leg is not None:
            leg.capture(lambda: self._delta_events.append(event))
            return
        self._delta_events.append(event)

    def _schedule_delta_wakeup(self, process: Process) -> None:
        leg = _context.leg
        if leg is not None:
            leg.capture(lambda: self._delta_wakeups.append(process))
            return
        self._delta_wakeups.append(process)

    def _defer_timed(self, entry: _TimedEntry, leg) -> _TimedEntry:
        """Capture a timed-heap push; the entry itself exists immediately.

        Callers (``Event.notify`` override rules) need the cancellation
        handle right away, so the entry is created in the leg, but its heap
        sequence number is only drawn when the push replays at the barrier —
        keeping the tie-break order identical to the serial reference.
        """
        def push():
            entry.seq = next(self._seq)
            heapq.heappush(self._timed, entry)
        leg.capture(push)
        return entry

    def _schedule_timed_notification(self, event: Event, due: SimTime) -> _TimedEntry:
        leg = _context.leg
        if leg is not None:
            return self._defer_timed(_TimedEntry(due, -1, event._fire), leg)
        entry = _TimedEntry(due, next(self._seq), event._fire)
        heapq.heappush(self._timed, entry)
        return entry

    def _schedule_timed_wakeup(self, process: Process, due: SimTime, timeout: bool = False) -> _TimedEntry:
        action = _ProcessWakeup(self, process, timeout)
        leg = _context.leg
        if leg is not None:
            return self._defer_timed(_TimedEntry(due, -1, action), leg)
        entry = _TimedEntry(due, next(self._seq), action)
        heapq.heappush(self._timed, entry)
        return entry

    def schedule_callback(self, delay: SimTime, callback: Callable[[], None]) -> _TimedEntry:
        """Run ``callback`` after ``delay`` simulated time (kernel context)."""
        leg = _context.leg
        if leg is not None:
            return self._defer_timed(_TimedEntry(self._now + delay, -1, callback), leg)
        entry = _TimedEntry(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._timed, entry)
        return entry

    def _queue_method(self, method: MethodProcess) -> None:
        leg = _context.leg
        if leg is not None:
            leg.capture(lambda: self._methods.append(method))
            return
        self._methods.append(method)

    def request_update(self, channel) -> None:
        """Primitive-channel update request (``sc_prim_channel``).

        Deduplicated by identity in O(1); the list keeps first-request
        order, which is the order ``_update()`` calls run in.
        """
        leg = _context.leg
        if leg is not None:
            leg.capture(lambda: self.request_update(channel))
            return
        if id(channel) not in self._update_request_ids:
            self._update_requests.append(channel)
            self._update_request_ids.add(id(channel))

    # -- control ---------------------------------------------------------------
    def stop(self) -> None:
        self._stop_requested = True

    def run(self, duration: Optional[SimTime] = None) -> SimTime:
        """Run the simulation.

        With ``duration`` the kernel simulates at most that much additional
        time; without it, until no activity remains or :meth:`stop` is
        called.  Returns the simulation time reached.
        """
        _context.stack.append(self)
        deadline = None if duration is None else self._now + duration
        self._stop_requested = False
        self._running = True
        try:
            while not self._stop_requested:
                self._delta_cycle()
                if self._stop_requested:
                    break
                if self._runnable:
                    continue
                barrier = self.barrier_hook
                if barrier is not None and barrier():
                    continue
                if not self._advance_time(deadline):
                    break
        except Exception as exc:
            hook = self.error_hook
            if hook is not None:
                hook(exc)
            raise
        finally:
            self._running = False
            _context.stack.pop()
        if (not self._stop_requested and deadline is not None
                and self._now < deadline and not self.pending_activity()):
            self._now = deadline
        return self._now

    # -- internals --------------------------------------------------------------
    def _delta_cycle(self) -> None:
        """One evaluate/update/delta-notify cycle at the current time."""
        progressed = bool(self._runnable or self._methods)
        # Evaluation phase.
        while self._runnable or self._methods:
            while self._methods:
                method = self._methods.popleft()
                hook = self.trace_hook
                if hook is not None:
                    hook("method", self._now.picoseconds, method.name)
                method._run()
            if not self._runnable:
                break
            process = self._runnable.popleft()
            self._runnable_set.discard(id(process))
            if process.finished or process.state == ProcessState.SUSPENDED:
                continue
            self._current_process = process
            try:
                hook = self.trace_hook
                if hook is not None:
                    hook("step", self._now.picoseconds, process.name)
                process._step(self)
            finally:
                self._current_process = None
            if self._stop_requested:
                return
        # Update phase.
        updates, self._update_requests = self._update_requests, []
        self._update_request_ids.clear()
        for channel in updates:
            channel._update()
        # Delta notification phase.
        delta_events, self._delta_events = self._delta_events, []
        delta_wakeups, self._delta_wakeups = self._delta_wakeups, []
        for event in delta_events:
            event._fire()
        for process in delta_wakeups:
            process._wake(self)
        if progressed or delta_events or delta_wakeups:
            self.delta_count += 1

    def _advance_time(self, deadline: Optional[SimTime]) -> bool:
        """Pop the earliest timed entries; return False when simulation ends."""
        while self._timed and self._timed[0].cancelled:
            heapq.heappop(self._timed)
        if not self._timed:
            return False
        due = self._timed[0].due
        if deadline is not None and due > deadline:
            self._now = deadline
            return False
        self._now = due
        hook = self.time_hook
        if hook is not None:
            hook(due.picoseconds)
        while self._timed and self._timed[0].due == due:
            entry = heapq.heappop(self._timed)
            if not entry.cancelled:
                entry.action()
        return True


class _MethodWaiter:
    """Adapter letting a MethodProcess sit in an Event's waiter list."""

    __slots__ = ("method",)

    def __init__(self, method: MethodProcess):
        self.method = method

    def _wake(self, kernel: "Kernel", timed_out: bool = False) -> None:
        self.method.trigger()
