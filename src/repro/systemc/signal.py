"""Primitive channels: ``sc_signal``-like value channels.

A :class:`Signal` holds a value, applies writes in the update phase (so all
readers within a delta cycle observe the old value), and notifies a
value-changed event.  :class:`IrqLine` is a convenience boolean signal with
edge events, used for interrupt wiring between peripherals and CPUs.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

from .event import Event
from .kernel import Kernel, current_kernel, current_leg

T = TypeVar("T")


class Signal(Generic[T]):
    """A value channel with SystemC request-update/update semantics."""

    def __init__(self, name: str = "signal", initial: Optional[T] = None, kernel: Optional[Kernel] = None):
        self.name = name
        self._kernel = kernel or current_kernel()
        self._current: Optional[T] = initial
        self._next: Optional[T] = initial
        self._update_pending = False
        self.value_changed = Event(f"{name}.value_changed", self._kernel)

    def read(self) -> Optional[T]:
        return self._current

    @property
    def value(self) -> Optional[T]:
        return self._current

    def write(self, value: T) -> None:
        self._next = value
        if not self._update_pending:
            self._update_pending = True
            self._kernel.request_update(self)

    def _update(self) -> None:
        self._update_pending = False
        if self._next != self._current:
            self._current = self._next
            self.value_changed.notify(delay=None)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, value={self._current!r})"


class IrqLine:
    """A level-sensitive interrupt line with rise/fall events.

    Writes take effect immediately (not in the update phase); interrupt
    controllers sample the level and latch pending state themselves, which
    matches how TLM-based VPs usually wire IRQs (VCML ``gpio`` ports).
    """

    def __init__(self, name: str = "irq", kernel: Optional[Kernel] = None):
        self.name = name
        self._kernel = kernel or current_kernel()
        self._level = False
        self.raised = Event(f"{name}.raised", self._kernel)
        self.lowered = Event(f"{name}.lowered", self._kernel)
        self.changed = Event(f"{name}.changed", self._kernel)
        self._targets = []

    def connect(self, callback) -> None:
        """Register ``callback(level: bool)`` invoked on every level change."""
        self._targets.append(callback)

    def disconnect(self, callback) -> None:
        """Remove a callback previously registered with :meth:`connect`."""
        try:
            self._targets.remove(callback)
        except ValueError:
            raise ValueError(
                f"callback not connected to irq line {self.name!r}") from None

    @property
    def level(self) -> bool:
        return self._level

    def write(self, level: bool) -> None:
        level = bool(level)
        leg = current_leg()
        if leg is not None:
            # Inside a simulate leg the *whole* write defers to the quantum
            # barrier: the connect-callback chain reaches into other cores
            # (GIC irq_out -> Processor._irq_changed -> vcpu.set_irq_line),
            # which must never happen while those cores' legs run.  The
            # replay re-enters this method in barrier context, where the
            # level dedupe below re-applies against the then-current level.
            leg.capture(lambda: self.write(level))
            return
        if level == self._level:
            return
        self._level = level
        for callback in self._targets:
            callback(level)
        (self.raised if level else self.lowered).notify(delay=None)
        self.changed.notify(delay=None)

    def raise_irq(self) -> None:
        self.write(True)

    def lower_irq(self) -> None:
        self.write(False)

    def pulse(self) -> None:
        """Raise then immediately lower — edge-style notification."""
        self.write(True)
        self.write(False)

    def __repr__(self) -> str:
        return f"IrqLine({self.name!r}, level={self._level})"
