"""Events — the primitive synchronization objects of the kernel.

Mirrors ``sc_core::sc_event``: processes wait on events; events can be
notified immediately, after a delta cycle, or after a time delay.  A pending
timed notification is cancelled by a later immediate/delta notification, as
in SystemC (an event has at most one pending notification, and earlier
notifications override later ones).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from .time import SimTime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .kernel import Kernel
    from .process import Process


class Event:
    """A notifiable synchronization point for simulation processes."""

    def __init__(self, name: str = "event", kernel: Optional["Kernel"] = None):
        self.name = name
        self._kernel = kernel
        self._waiters: List["Process"] = []
        # Pending notification bookkeeping: None = nothing pending,
        # a SimTime = absolute due time, DELTA for next delta cycle.
        self._pending_time: Optional[SimTime] = None
        self._pending_delta = False
        self._pending_handle = None

    # -- kernel wiring ----------------------------------------------------
    def _attach(self, kernel: "Kernel") -> None:
        if self._kernel is None:
            self._kernel = kernel
        elif self._kernel is not kernel:
            raise RuntimeError(f"event {self.name!r} already bound to another kernel")

    def _require_kernel(self) -> "Kernel":
        if self._kernel is None:
            from .kernel import current_kernel

            self._kernel = current_kernel()
        return self._kernel

    # -- waiting ----------------------------------------------------------
    def _add_waiter(self, process: "Process") -> None:
        if process not in self._waiters:
            self._waiters.append(process)

    def _remove_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    # -- notification -------------------------------------------------------
    def notify(self, delay: Optional[SimTime] = None) -> None:
        """Notify the event.

        ``notify()`` is an *immediate* notification: waiting processes become
        runnable in the current evaluation phase.  ``notify(SimTime(0))`` is a
        *delta* notification.  ``notify(t)`` with ``t > 0`` is a timed
        notification at ``now + t``.
        """
        kernel = self._require_kernel()
        if delay is None:
            self._cancel_pending()
            kernel._trigger_event(self)
            return
        if not isinstance(delay, SimTime):
            raise TypeError(f"notify() delay must be SimTime, got {type(delay).__name__}")
        if delay.is_zero():
            if self._pending_delta:
                return
            self._cancel_pending()
            self._pending_delta = True
            kernel._schedule_delta_notification(self)
            return
        due = kernel.now + delay
        if self._pending_delta:
            return  # a delta notification beats any timed one
        if self._pending_time is not None and self._pending_time <= due:
            return  # earlier notification wins
        self._cancel_pending()
        self._pending_time = due
        self._pending_handle = kernel._schedule_timed_notification(self, due)

    def cancel(self) -> None:
        """Cancel any pending (delta or timed) notification."""
        self._cancel_pending()

    def _cancel_pending(self) -> None:
        if self._pending_handle is not None:
            self._pending_handle.cancelled = True
            self._pending_handle = None
        self._pending_time = None
        self._pending_delta = False

    # Called by the kernel when a scheduled notification matures.
    def _fire(self) -> None:
        self._pending_time = None
        self._pending_delta = False
        self._pending_handle = None
        kernel = self._require_kernel()
        kernel._trigger_event(self)

    def __repr__(self) -> str:
        return f"Event({self.name!r}, waiters={len(self._waiters)})"


class EventList:
    """Wait-for-any combination of events (``e1 | e2`` in SystemC)."""

    def __init__(self, events):
        self.events = tuple(events)
        if not self.events:
            raise ValueError("EventList needs at least one event")
        for event in self.events:
            if not isinstance(event, Event):
                raise TypeError("EventList members must be Events")

    def __or__(self, other):
        if isinstance(other, Event):
            return EventList(self.events + (other,))
        if isinstance(other, EventList):
            return EventList(self.events + other.events)
        return NotImplemented

    def __iter__(self):
        return iter(self.events)

    def __len__(self):
        return len(self.events)


def any_of(*events: Event) -> EventList:
    """Convenience constructor for a wait-for-any event combination."""
    return EventList(events)
