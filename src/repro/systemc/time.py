"""Simulation-time representation for the SystemC-like kernel.

SystemC represents simulated time as an integer multiple of a resolution.
We fix the resolution at one picosecond, which is fine enough for GHz-range
clocks and coarse enough that a 64-bit integer covers centuries of simulated
time.  :class:`SimTime` is an immutable value type supporting arithmetic,
comparison and pretty printing, mirroring ``sc_core::sc_time``.
"""

from __future__ import annotations

import math
from typing import Union

#: Picoseconds per unit, mirroring ``sc_core::sc_time_unit``.
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000

_UNIT_SUFFIXES = (
    (SEC, "s"),
    (MS, "ms"),
    (US, "us"),
    (NS, "ns"),
    (PS, "ps"),
)


class SimTime:
    """An absolute or relative amount of simulated time, in picoseconds.

    Instances are immutable and totally ordered.  Construct via the unit
    classmethods (:meth:`ps`, :meth:`ns`, :meth:`us`, :meth:`ms`,
    :meth:`seconds`) or :meth:`from_seconds`.
    """

    __slots__ = ("_ps",)

    def __init__(self, picoseconds: int = 0):
        if not isinstance(picoseconds, int):
            raise TypeError(f"SimTime wants an integer ps count, got {type(picoseconds).__name__}")
        if picoseconds < 0:
            raise ValueError(f"SimTime cannot be negative: {picoseconds}")
        self._ps = picoseconds

    # -- constructors ---------------------------------------------------
    @classmethod
    def ps(cls, value: Union[int, float]) -> "SimTime":
        return cls(round(value * PS))

    @classmethod
    def ns(cls, value: Union[int, float]) -> "SimTime":
        return cls(round(value * NS))

    @classmethod
    def us(cls, value: Union[int, float]) -> "SimTime":
        return cls(round(value * US))

    @classmethod
    def ms(cls, value: Union[int, float]) -> "SimTime":
        return cls(round(value * MS))

    @classmethod
    def seconds(cls, value: Union[int, float]) -> "SimTime":
        return cls(round(value * SEC))

    @classmethod
    def from_seconds(cls, value: float) -> "SimTime":
        return cls.seconds(value)

    @classmethod
    def zero(cls) -> "SimTime":
        return _ZERO

    @classmethod
    def from_frequency(cls, hertz: float) -> "SimTime":
        """Return the period of a clock running at ``hertz``."""
        if hertz <= 0:
            raise ValueError(f"frequency must be positive, got {hertz}")
        return cls(max(1, round(SEC / hertz)))

    # -- accessors ------------------------------------------------------
    @property
    def picoseconds(self) -> int:
        return self._ps

    def to_seconds(self) -> float:
        return self._ps / SEC

    def to_ns(self) -> float:
        return self._ps / NS

    def to_us(self) -> float:
        return self._ps / US

    def to_ms(self) -> float:
        return self._ps / MS

    def is_zero(self) -> bool:
        return self._ps == 0

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: "SimTime") -> "SimTime":
        return SimTime(self._ps + _as_ps(other))

    def __sub__(self, other: "SimTime") -> "SimTime":
        return SimTime(self._ps - _as_ps(other))

    def __mul__(self, factor: Union[int, float]) -> "SimTime":
        return SimTime(round(self._ps * factor))

    __rmul__ = __mul__

    def __floordiv__(self, other: "SimTime") -> int:
        return self._ps // _as_ps(other)

    def __mod__(self, other: "SimTime") -> "SimTime":
        return SimTime(self._ps % _as_ps(other))

    def __truediv__(self, other: Union["SimTime", int, float]):
        if isinstance(other, SimTime):
            return self._ps / other._ps
        return SimTime(round(self._ps / other))

    # -- comparisons ----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimTime) and self._ps == other._ps

    def __lt__(self, other: "SimTime") -> bool:
        return self._ps < _as_ps(other)

    def __le__(self, other: "SimTime") -> bool:
        return self._ps <= _as_ps(other)

    def __gt__(self, other: "SimTime") -> bool:
        return self._ps > _as_ps(other)

    def __ge__(self, other: "SimTime") -> bool:
        return self._ps >= _as_ps(other)

    def __hash__(self) -> int:
        return hash(self._ps)

    def __bool__(self) -> bool:
        return self._ps != 0

    # -- repr -----------------------------------------------------------
    def __repr__(self) -> str:
        return f"SimTime({self._ps} ps)"

    def __str__(self) -> str:
        if self._ps == 0:
            return "0 s"
        for factor, suffix in _UNIT_SUFFIXES[:-1]:
            if self._ps >= factor and self._ps % factor == 0:
                return f"{self._ps // factor} {suffix}"
        # No exact unit above ps: print fractionally in the largest unit
        # reached (raw ps counts get unreadable fast).
        for factor, suffix in _UNIT_SUFFIXES[:-1]:
            if self._ps >= factor:
                value = self._ps / factor
                if math.isclose(value, round(value, 3)):
                    return f"{round(value, 3):g} {suffix}"
                return f"{value:.3f} {suffix}"
        return f"{self._ps} ps"


def _as_ps(value: SimTime) -> int:
    if not isinstance(value, SimTime):
        raise TypeError(f"expected SimTime, got {type(value).__name__}")
    return value._ps


_ZERO = SimTime(0)
