"""A SystemC-like discrete-event simulation kernel in pure Python.

Implements the IEEE 1666 scheduling semantics that the paper's CPU model is
written against: SC_THREAD processes (as generators), events with
immediate/delta/timed notification, primitive-channel updates, delta cycles,
and a module hierarchy.
"""

from .clock import Clock, Reset
from .event import Event, EventList, any_of
from .kernel import Kernel, current_kernel
from .module import Module, Simulation
from .process import MethodProcess, Process, ProcessState, WaitTimeout
from .signal import IrqLine, Signal
from .time import SimTime

__all__ = [
    "Clock",
    "Event",
    "EventList",
    "IrqLine",
    "Kernel",
    "MethodProcess",
    "Module",
    "Process",
    "ProcessState",
    "Reset",
    "Signal",
    "SimTime",
    "Simulation",
    "WaitTimeout",
    "any_of",
    "current_kernel",
]
