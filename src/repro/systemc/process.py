"""Simulation processes.

SystemC's ``SC_THREAD`` maps naturally onto Python generators: the body is a
generator function and every ``yield`` is a wait statement.  A process may
yield:

* a :class:`~repro.systemc.time.SimTime` — wait for that amount of time;
* an :class:`~repro.systemc.event.Event` — wait until notified;
* an :class:`~repro.systemc.event.EventList` — wait until any member fires;
* a ``(SimTime, Event...)`` timeout wait via :class:`WaitTimeout`;
* ``None`` — wait one delta cycle.

``SC_METHOD``-style callbacks are supported through :class:`MethodProcess`,
re-triggered by a static sensitivity list.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Generator, Iterable, Optional, Union

from .event import Event, EventList
from .time import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

WaitSpec = Union[SimTime, Event, EventList, None, "WaitTimeout"]


class WaitTimeout:
    """Wait for any of ``events``, but at most ``timeout`` time.

    After the wait, :attr:`timed_out` on the owning process says whether the
    timeout (rather than an event) woke it.
    """

    def __init__(self, timeout: SimTime, *events: Event):
        if not isinstance(timeout, SimTime):
            raise TypeError("WaitTimeout timeout must be SimTime")
        self.timeout = timeout
        self.events = tuple(events)


class ProcessState(enum.Enum):
    READY = "ready"
    WAITING = "waiting"
    SUSPENDED = "suspended"
    FINISHED = "finished"


class Process:
    """An ``SC_THREAD``-like coroutine process."""

    def __init__(self, name: str, body: Callable[[], Generator], kernel: "Kernel"):
        self.name = name
        self._body_fn = body
        self._kernel = kernel
        self._generator: Optional[Generator] = None
        self.state = ProcessState.READY
        self.timed_out = False
        self._waiting_events: tuple = ()
        self._timeout_handle = None
        self._suspend_pending_wake = False

    # -- lifecycle --------------------------------------------------------
    def _start(self) -> None:
        if self._generator is None:
            self._generator = self._body_fn()

    @property
    def finished(self) -> bool:
        return self.state == ProcessState.FINISHED

    # -- stepping (kernel only) --------------------------------------------
    def _step(self, kernel: "Kernel") -> None:
        """Advance the coroutine to its next wait statement."""
        self._start()
        self.state = ProcessState.READY
        try:
            wait_spec = self._generator.send(None)
        except StopIteration:
            self.state = ProcessState.FINISHED
            self._clear_waits()
            return
        self._arm(wait_spec, kernel)

    def _arm(self, wait_spec: WaitSpec, kernel: "Kernel") -> None:
        """Register the wait condition returned by the last ``yield``."""
        self._clear_waits()
        self.timed_out = False
        self.state = ProcessState.WAITING
        if wait_spec is None:
            kernel._schedule_delta_wakeup(self)
            return
        if isinstance(wait_spec, SimTime):
            self._timeout_handle = kernel._schedule_timed_wakeup(self, kernel.now + wait_spec)
            return
        if isinstance(wait_spec, Event):
            wait_spec._attach(kernel)
            wait_spec._add_waiter(self)
            self._waiting_events = (wait_spec,)
            return
        if isinstance(wait_spec, EventList):
            for event in wait_spec:
                event._attach(kernel)
                event._add_waiter(self)
            self._waiting_events = tuple(wait_spec)
            return
        if isinstance(wait_spec, WaitTimeout):
            for event in wait_spec.events:
                event._attach(kernel)
                event._add_waiter(self)
            self._waiting_events = tuple(wait_spec.events)
            self._timeout_handle = kernel._schedule_timed_wakeup(
                self, kernel.now + wait_spec.timeout, timeout=True
            )
            return
        raise TypeError(f"process {self.name!r} yielded unsupported wait spec: {wait_spec!r}")

    def _clear_waits(self) -> None:
        for event in self._waiting_events:
            event._remove_waiter(self)
        self._waiting_events = ()
        if self._timeout_handle is not None:
            self._timeout_handle.cancelled = True
            self._timeout_handle = None

    # -- wakeups ------------------------------------------------------------
    def _wake(self, kernel: "Kernel", timed_out: bool = False) -> None:
        if self.state == ProcessState.FINISHED:
            return
        if self.state == ProcessState.SUSPENDED:
            # Remember that the wake happened; deliver on resume.
            self._suspend_pending_wake = True
            self.timed_out = timed_out
            self._clear_waits()
            return
        self._clear_waits()
        self.timed_out = timed_out
        self.state = ProcessState.READY
        kernel._make_runnable(self)

    # -- suspend / resume (sc_process_handle::suspend) -----------------------
    def suspend(self) -> None:
        if self.state in (ProcessState.FINISHED,):
            return
        if self.state != ProcessState.SUSPENDED:
            self._suspend_pending_wake = False
            self.state = ProcessState.SUSPENDED

    def resume(self, kernel: "Kernel") -> None:
        if self.state != ProcessState.SUSPENDED:
            return
        if self._suspend_pending_wake:
            self._suspend_pending_wake = False
            self.state = ProcessState.READY
            kernel._make_runnable(self)
        else:
            self.state = ProcessState.WAITING

    def __repr__(self) -> str:
        return f"Process({self.name!r}, {self.state.value})"


class MethodProcess:
    """An ``SC_METHOD``-like callback process with a static sensitivity list."""

    def __init__(
        self,
        name: str,
        callback: Callable[[], None],
        kernel: "Kernel",
        sensitive_to: Iterable[Event] = (),
    ):
        self.name = name
        self.callback = callback
        self._kernel = kernel
        self.sensitivity = tuple(sensitive_to)
        self._scheduled = False

    def trigger(self) -> None:
        if not self._scheduled:
            self._scheduled = True
            self._kernel._queue_method(self)

    def _run(self) -> None:
        self._scheduled = False
        self.callback()

    def __repr__(self) -> str:
        return f"MethodProcess({self.name!r})"
