"""RV64-lite: a second guest architecture (§VI future work).

The paper closes with: *"the approach can be extended to other
architectures that have a virtualization extension, such as
RISC-V-on-RISC-V simulation"*.  Every layer of this repository above the
executor is ISA-agnostic — the simulated KVM, the watchdog, the quantum
loop, the TLM platform — so supporting RISC-V needs exactly one new piece:
an RV64 execution backend speaking the same :class:`ExitInfo` protocol.

This module provides:

* **real RV64IM instruction encodings** (R/I/S/B/U/J formats) with an
  encoder (:class:`Rv64Builder` — a programmatic assembler) and decoder;
* machine-mode CSRs (``mtvec``, ``mepc``, ``mcause``, ``mstatus.MIE``,
  ``mhartid``), traps (``ecall``, illegal instruction), interrupts and
  ``mret``;
* ``wfi`` with the same exit semantics as the ARM backend — so WFI
  annotation and in-kernel blocking work unchanged;
* :class:`Rv64Interpreter`, a drop-in :class:`GuestExecutor`.

Like A64-lite next to AArch64, this is the working subset needed by the
VP's guests, not a complete RV64 implementation (no C extension, no S/U
privilege modes, no MMU — hypervisor-style two-stage translation is
modeled at the memory-slot layer as for ARM).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..iss.executor import ExitInfo, ExitReason, GuestMemoryMap, MmioRequest, RunStats

MASK64 = (1 << 64) - 1

# CSR addresses (machine mode).
CSR_MSTATUS = 0x300
CSR_MIE = 0x304
CSR_MTVEC = 0x305
CSR_MEPC = 0x341
CSR_MCAUSE = 0x342
CSR_MTVAL = 0x343
CSR_MHARTID = 0xF14

MSTATUS_MIE = 1 << 3
MSTATUS_MPIE = 1 << 7

CAUSE_ILLEGAL = 2
CAUSE_ECALL_M = 11
CAUSE_BREAKPOINT = 3
CAUSE_MEXT_IRQ = (1 << 63) | 11

# Fixed encodings.
WFI_WORD = 0x10500073
MRET_WORD = 0x30200073
ECALL_WORD = 0x00000073
EBREAK_WORD = 0x00100073


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


class Rv64State:
    """Machine-mode hart state."""

    def __init__(self, hart_id: int = 0):
        self.regs = [0] * 32
        self.pc = 0
        self.csrs: Dict[int, int] = {CSR_MHARTID: hart_id, CSR_MSTATUS: 0}
        self.halted = False
        self.instret = 0
        self.hart_id = hart_id

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.regs[index] = value & MASK64

    @property
    def interrupts_enabled(self) -> bool:
        return bool(self.csrs.get(CSR_MSTATUS, 0) & MSTATUS_MIE)

    def trap(self, cause: int, pc: int, tval: int = 0) -> None:
        """Take a machine-mode trap: save pc, disable interrupts, vector."""
        status = self.csrs.get(CSR_MSTATUS, 0)
        if status & MSTATUS_MIE:
            status |= MSTATUS_MPIE
        else:
            status &= ~MSTATUS_MPIE
        status &= ~MSTATUS_MIE
        self.csrs[CSR_MSTATUS] = status
        self.csrs[CSR_MEPC] = pc
        self.csrs[CSR_MCAUSE] = cause & MASK64
        self.csrs[CSR_MTVAL] = tval
        self.pc = self.csrs.get(CSR_MTVEC, 0) & ~0x3

    def mret(self) -> None:
        status = self.csrs.get(CSR_MSTATUS, 0)
        if status & MSTATUS_MPIE:
            status |= MSTATUS_MIE
        else:
            status &= ~MSTATUS_MIE
        status |= MSTATUS_MPIE
        self.csrs[CSR_MSTATUS] = status
        self.pc = self.csrs.get(CSR_MEPC, 0)


class Rv64Builder:
    """Programmatic RV64IM assembler producing real encodings.

    Registers are numeric (0..31, x0 hard-wired to zero).  Labels are
    supported through :meth:`label` and late fix-ups::

        rv = Rv64Builder(base=0x1000)
        rv.addi(5, 0, 42)
        loop = rv.label("loop")
        rv.addi(6, 6, 1)
        rv.bne(6, 5, "loop")
        rv.halt()
    """

    def __init__(self, base: int = 0):
        self.base = base
        self.words: List[int] = []
        self.labels: Dict[str, int] = {}
        self._fixups: List[tuple] = []

    # -- layout ----------------------------------------------------------
    @property
    def pc(self) -> int:
        return self.base + 4 * len(self.words)

    def label(self, name: str) -> int:
        self.labels[name] = self.pc
        return self.pc

    def _emit(self, word: int) -> None:
        self.words.append(word & 0xFFFFFFFF)

    def _target(self, target, kind: str) -> int:
        """Resolve now or record a fixup; returns a byte offset."""
        if isinstance(target, str):
            if target in self.labels:
                return self.labels[target] - self.pc
            self._fixups.append((len(self.words), self.pc, target, kind))
            return 0
        return target - self.pc

    # -- instruction formats ------------------------------------------------
    def _r(self, opcode, rd, funct3, rs1, rs2, funct7):
        self._emit((funct7 << 25) | (rs2 << 20) | (rs1 << 15)
                   | (funct3 << 12) | (rd << 7) | opcode)

    def _i(self, opcode, rd, funct3, rs1, imm):
        self._emit(((imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12)
                   | (rd << 7) | opcode)

    def _s(self, opcode, funct3, rs1, rs2, imm):
        self._emit((((imm >> 5) & 0x7F) << 25) | (rs2 << 20) | (rs1 << 15)
                   | (funct3 << 12) | ((imm & 0x1F) << 7) | opcode)

    @staticmethod
    def _encode_b(funct3, rs1, rs2, offset):
        imm = offset & 0x1FFF
        return ((((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25)
                | (rs2 << 20) | (rs1 << 15) | (funct3 << 12)
                | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | 0x63)

    @staticmethod
    def _encode_j(rd, offset):
        imm = offset & 0x1FFFFF
        return ((((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21)
                | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12)
                | (rd << 7) | 0x6F)

    # -- RV64I ------------------------------------------------------------------
    def lui(self, rd, imm20):
        self._emit(((imm20 & 0xFFFFF) << 12) | (rd << 7) | 0x37)

    def auipc(self, rd, imm20):
        self._emit(((imm20 & 0xFFFFF) << 12) | (rd << 7) | 0x17)

    def addi(self, rd, rs1, imm):
        self._i(0x13, rd, 0x0, rs1, imm)

    def slti(self, rd, rs1, imm):
        self._i(0x13, rd, 0x2, rs1, imm)

    def sltiu(self, rd, rs1, imm):
        self._i(0x13, rd, 0x3, rs1, imm)

    def xori(self, rd, rs1, imm):
        self._i(0x13, rd, 0x4, rs1, imm)

    def ori(self, rd, rs1, imm):
        self._i(0x13, rd, 0x6, rs1, imm)

    def andi(self, rd, rs1, imm):
        self._i(0x13, rd, 0x7, rs1, imm)

    def slli(self, rd, rs1, shamt):
        self._i(0x13, rd, 0x1, rs1, shamt & 0x3F)

    def srli(self, rd, rs1, shamt):
        self._i(0x13, rd, 0x5, rs1, shamt & 0x3F)

    def srai(self, rd, rs1, shamt):
        self._i(0x13, rd, 0x5, rs1, (shamt & 0x3F) | 0x400)

    def add(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x0, rs1, rs2, 0x00)

    def sub(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x0, rs1, rs2, 0x20)

    def sll(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x1, rs1, rs2, 0x00)

    def slt(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x2, rs1, rs2, 0x00)

    def sltu(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x3, rs1, rs2, 0x00)

    def xor(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x4, rs1, rs2, 0x00)

    def srl(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x5, rs1, rs2, 0x00)

    def sra(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x5, rs1, rs2, 0x20)

    def or_(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x6, rs1, rs2, 0x00)

    def and_(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x7, rs1, rs2, 0x00)

    # M extension
    def mul(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x0, rs1, rs2, 0x01)

    def divu(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x5, rs1, rs2, 0x01)

    def remu(self, rd, rs1, rs2):
        self._r(0x33, rd, 0x7, rs1, rs2, 0x01)

    # loads / stores
    def lb(self, rd, rs1, imm):
        self._i(0x03, rd, 0x0, rs1, imm)

    def lbu(self, rd, rs1, imm):
        self._i(0x03, rd, 0x4, rs1, imm)

    def lw(self, rd, rs1, imm):
        self._i(0x03, rd, 0x2, rs1, imm)

    def lwu(self, rd, rs1, imm):
        self._i(0x03, rd, 0x6, rs1, imm)

    def ld(self, rd, rs1, imm):
        self._i(0x03, rd, 0x3, rs1, imm)

    def sb(self, rs2, rs1, imm):
        self._s(0x23, 0x0, rs1, rs2, imm)

    def sw(self, rs2, rs1, imm):
        self._s(0x23, 0x2, rs1, rs2, imm)

    def sd(self, rs2, rs1, imm):
        self._s(0x23, 0x3, rs1, rs2, imm)

    # control flow
    def jal(self, rd, target):
        self._emit(self._encode_j(rd, self._target(target, "j")))

    def jalr(self, rd, rs1, imm=0):
        self._i(0x67, rd, 0x0, rs1, imm)

    def _branch(self, funct3, rs1, rs2, target):
        self._emit(self._encode_b(funct3, rs1, rs2, self._target(target, "b")))

    def beq(self, rs1, rs2, target):
        self._branch(0x0, rs1, rs2, target)

    def bne(self, rs1, rs2, target):
        self._branch(0x1, rs1, rs2, target)

    def blt(self, rs1, rs2, target):
        self._branch(0x4, rs1, rs2, target)

    def bge(self, rs1, rs2, target):
        self._branch(0x5, rs1, rs2, target)

    def bltu(self, rs1, rs2, target):
        self._branch(0x6, rs1, rs2, target)

    def bgeu(self, rs1, rs2, target):
        self._branch(0x7, rs1, rs2, target)

    # system
    def csrrw(self, rd, csr, rs1):
        self._i(0x73, rd, 0x1, rs1, csr)

    def csrrs(self, rd, csr, rs1):
        self._i(0x73, rd, 0x2, rs1, csr)

    def csrrc(self, rd, csr, rs1):
        self._i(0x73, rd, 0x3, rs1, csr)

    def ecall(self):
        self._emit(ECALL_WORD)

    def ebreak(self):
        self._emit(EBREAK_WORD)

    def wfi(self):
        self._emit(WFI_WORD)

    def mret(self):
        self._emit(MRET_WORD)

    def fence(self):
        self._emit(0x0000000F)

    def nop(self):
        self.addi(0, 0, 0)

    def halt(self, code: int = 0):
        """Pseudo-instruction: this VP's simulation-exit hint.

        Encoded in the custom-0 opcode space (0x0B), which real RV64 leaves
        to implementations — analogous to A64-lite's HLT.
        """
        self._emit(((code & 0xFFFF) << 16) | 0x0B)

    # convenience pseudo-ops
    def li(self, rd, value):
        """Load a 32-bit-ish immediate (lui+addi)."""
        value &= MASK64
        if value < 0x800:
            self.addi(rd, 0, value)
            return
        upper = (value + 0x800) >> 12
        lower = value - (upper << 12)
        self.lui(rd, upper & 0xFFFFF)
        if lower:
            self.addi(rd, rd, lower)

    def j(self, target):
        self.jal(0, target)

    def ret(self):
        self.jalr(0, 1, 0)

    # -- output ----------------------------------------------------------------
    def build(self) -> bytes:
        for index, pc, name, kind in self._fixups:
            if name not in self.labels:
                raise ValueError(f"undefined label {name!r}")
            offset = self.labels[name] - pc
            word = self.words[index]
            if kind == "b":
                funct3 = (word >> 12) & 0x7
                rs1 = (word >> 15) & 0x1F
                rs2 = (word >> 20) & 0x1F
                self.words[index] = self._encode_b(funct3, rs1, rs2, offset)
            else:
                rd = (word >> 7) & 0x1F
                self.words[index] = self._encode_j(rd, offset)
        self._fixups.clear()
        return b"".join(word.to_bytes(4, "little") for word in self.words)


class Rv64Interpreter:
    """RV64IM machine-mode interpreter speaking the GuestExecutor protocol."""

    def __init__(self, state: Rv64State, memory: GuestMemoryMap):
        self.state = state
        self.memory = memory
        self.breakpoints: Set[int] = set()
        self.unsupported_ops: Set[int] = set()   # major opcodes (7 bit)
        self.irq_line = False
        self._pending_mmio: Optional[MmioRequest] = None
        self._skip_breakpoint_pc: Optional[int] = None
        self.memory_ops = 0
        self.exceptions = 0
        self.blocks_entered = 0
        self.new_blocks = 0
        self._known_blocks: Set[int] = set()
        self._block_start = True

    # -- GuestExecutor interface ----------------------------------------------
    @property
    def pc(self) -> int:
        return self.state.pc

    def set_irq(self, level: bool) -> None:
        self.irq_line = bool(level)

    def set_breakpoint(self, address: int) -> None:
        self.breakpoints.add(address)

    def clear_breakpoint(self, address: int) -> None:
        self.breakpoints.discard(address)

    def sample_stats(self) -> RunStats:
        return RunStats(
            instructions=self.state.instret,
            memory_ops=self.memory_ops,
            blocks_entered=self.blocks_entered,
            blocks_translated=self.new_blocks,
            tlb_misses=0,
            exceptions=self.exceptions,
        )

    @property
    def mmio_pending(self) -> bool:
        return self._pending_mmio is not None

    def run(self, max_instructions: int) -> ExitInfo:
        if self._pending_mmio is not None:
            raise RuntimeError("MMIO in flight; call complete_mmio() first")
        state = self.state
        if state.halted:
            return ExitInfo(ExitReason.HALT, 0, state.pc)
        executed = 0
        while executed < max_instructions:
            if (self.irq_line and state.interrupts_enabled
                    and state.pc != self._skip_breakpoint_pc):
                state.trap(CAUSE_MEXT_IRQ, state.pc)
                self.exceptions += 1
                self._block_start = True
            pc = state.pc
            if pc in self.breakpoints and pc != self._skip_breakpoint_pc:
                self._skip_breakpoint_pc = pc
                return ExitInfo(ExitReason.BREAKPOINT, executed, pc)
            if not self.memory.is_ram(pc, 4):
                return ExitInfo(ExitReason.ERROR, executed, pc,
                                message=f"fetch outside RAM at 0x{pc:x}")
            word = int.from_bytes(self.memory.read(pc, 4), "little")
            if self._block_start:
                self.blocks_entered += 1
                if pc not in self._known_blocks:
                    self._known_blocks.add(pc)
                    self.new_blocks += 1
                self._block_start = False
            outcome = self._exec(word, pc)
            if pc == self._skip_breakpoint_pc:
                self._skip_breakpoint_pc = None
            if outcome is None:
                executed += 1
                state.instret += 1
                continue
            if outcome[0] is ExitReason.MMIO:
                self._pending_mmio = outcome[1]
                return ExitInfo(ExitReason.MMIO, executed, pc, mmio=outcome[1])
            executed += 1
            state.instret += 1
            if outcome[0] is ExitReason.HALT:
                state.halted = True
                return ExitInfo(ExitReason.HALT, executed, state.pc,
                                halt_code=outcome[1])
            if outcome[0] is ExitReason.WFI:
                return ExitInfo(ExitReason.WFI, executed, state.pc)
            if outcome[0] is ExitReason.EMULATION:
                state.instret -= 1
                executed -= 1
                return ExitInfo(ExitReason.EMULATION, executed, pc)
        return ExitInfo(ExitReason.BUDGET, executed, state.pc)

    def complete_mmio(self, read_data: Optional[bytes] = None) -> None:
        request = self._pending_mmio
        if request is None:
            raise RuntimeError("no MMIO in flight")
        state = self.state
        if not request.is_write:
            if read_data is None or len(read_data) != request.size:
                raise ValueError("bad MMIO completion size")
            value = int.from_bytes(read_data, "little")
            if request.sign:
                value = _sext(value, 8 * request.size) & MASK64
            state.write_reg(request.register, value)
        state.pc = (state.pc + 4) & MASK64
        state.instret += 1
        self._pending_mmio = None

    def emulate_one(self) -> ExitInfo:
        """One-instruction user-space emulation (same contract as ARM)."""
        saved = set(self.unsupported_ops)
        self.unsupported_ops = set()
        try:
            info = self.run(1)
        finally:
            self.unsupported_ops = saved
        return info

    # -- execution ----------------------------------------------------------------
    def _exec(self, word: int, pc: int):
        state = self.state
        opcode = word & 0x7F
        if opcode in self.unsupported_ops:
            return (ExitReason.EMULATION, 0)
        rd = (word >> 7) & 0x1F
        funct3 = (word >> 12) & 0x7
        rs1 = (word >> 15) & 0x1F
        rs2 = (word >> 20) & 0x1F
        funct7 = (word >> 25) & 0x7F
        next_pc = (pc + 4) & MASK64

        if word == WFI_WORD:
            state.pc = next_pc
            if self.irq_line:
                return None
            return (ExitReason.WFI, 0)
        if word == MRET_WORD:
            state.mret()
            self._block_start = True
            return None
        if word == ECALL_WORD:
            state.trap(CAUSE_ECALL_M, next_pc)
            self.exceptions += 1
            self._block_start = True
            return None
        if word == EBREAK_WORD:
            state.trap(CAUSE_BREAKPOINT, next_pc)
            self.exceptions += 1
            self._block_start = True
            return None

        if opcode == 0x0B:          # custom-0: simulation halt
            state.pc = next_pc
            return (ExitReason.HALT, (word >> 16) & 0xFFFF)
        if opcode == 0x37:          # LUI
            state.write_reg(rd, _sext(word & 0xFFFFF000, 32) & MASK64)
        elif opcode == 0x17:        # AUIPC
            state.write_reg(rd, (pc + _sext(word & 0xFFFFF000, 32)) & MASK64)
        elif opcode == 0x13:        # OP-IMM
            imm = _sext(word >> 20, 12)
            a = state.read_reg(rs1)
            if funct3 == 0x0:
                state.write_reg(rd, a + imm)
            elif funct3 == 0x2:
                state.write_reg(rd, int(_as_signed(a) < imm))
            elif funct3 == 0x3:
                state.write_reg(rd, int(a < (imm & MASK64)))
            elif funct3 == 0x4:
                state.write_reg(rd, a ^ (imm & MASK64))
            elif funct3 == 0x6:
                state.write_reg(rd, a | (imm & MASK64))
            elif funct3 == 0x7:
                state.write_reg(rd, a & (imm & MASK64))
            elif funct3 == 0x1:
                state.write_reg(rd, a << ((word >> 20) & 0x3F))
            elif funct3 == 0x5:
                shamt = (word >> 20) & 0x3F
                if word & (1 << 30):
                    state.write_reg(rd, (_as_signed(a) >> shamt) & MASK64)
                else:
                    state.write_reg(rd, a >> shamt)
        elif opcode == 0x33:        # OP
            a, b = state.read_reg(rs1), state.read_reg(rs2)
            if funct7 == 0x01:      # M extension
                if funct3 == 0x0:
                    state.write_reg(rd, a * b)
                elif funct3 == 0x5:
                    state.write_reg(rd, MASK64 if b == 0 else a // b)
                elif funct3 == 0x7:
                    state.write_reg(rd, a if b == 0 else a % b)
                else:
                    return self._illegal(word, pc)
            elif funct3 == 0x0:
                state.write_reg(rd, a - b if funct7 == 0x20 else a + b)
            elif funct3 == 0x1:
                state.write_reg(rd, a << (b & 0x3F))
            elif funct3 == 0x2:
                state.write_reg(rd, int(_as_signed(a) < _as_signed(b)))
            elif funct3 == 0x3:
                state.write_reg(rd, int(a < b))
            elif funct3 == 0x4:
                state.write_reg(rd, a ^ b)
            elif funct3 == 0x5:
                shamt = b & 0x3F
                if funct7 == 0x20:
                    state.write_reg(rd, (_as_signed(a) >> shamt) & MASK64)
                else:
                    state.write_reg(rd, a >> shamt)
            elif funct3 == 0x6:
                state.write_reg(rd, a | b)
            elif funct3 == 0x7:
                state.write_reg(rd, a & b)
        elif opcode == 0x03:        # LOAD
            imm = _sext(word >> 20, 12)
            address = (state.read_reg(rs1) + imm) & MASK64
            size = {0x0: 1, 0x4: 1, 0x1: 2, 0x5: 2, 0x2: 4, 0x6: 4, 0x3: 8}.get(funct3)
            if size is None:
                return self._illegal(word, pc)
            signed = funct3 in (0x0, 0x1, 0x2)
            self.memory_ops += 1
            if not self.memory.is_ram(address, size):
                return (ExitReason.MMIO,
                        MmioRequest(address, size, False, None, rd, sign=signed))
            raw = int.from_bytes(self.memory.read(address, size), "little")
            if signed:
                raw = _sext(raw, 8 * size) & MASK64
            state.write_reg(rd, raw)
        elif opcode == 0x23:        # STORE
            imm = _sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
            address = (state.read_reg(rs1) + imm) & MASK64
            size = {0x0: 1, 0x1: 2, 0x2: 4, 0x3: 8}.get(funct3)
            if size is None:
                return self._illegal(word, pc)
            data = (state.read_reg(rs2) & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
            self.memory_ops += 1
            if not self.memory.is_ram(address, size):
                return (ExitReason.MMIO, MmioRequest(address, size, True, data, 0))
            self.memory.write(address, data)
        elif opcode == 0x63:        # BRANCH
            imm = _sext((((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11)
                        | (((word >> 25) & 0x3F) << 5) | (((word >> 8) & 0xF) << 1), 13)
            a, b = state.read_reg(rs1), state.read_reg(rs2)
            taken = {
                0x0: a == b, 0x1: a != b,
                0x4: _as_signed(a) < _as_signed(b), 0x5: _as_signed(a) >= _as_signed(b),
                0x6: a < b, 0x7: a >= b,
            }.get(funct3)
            if taken is None:
                return self._illegal(word, pc)
            if taken:
                next_pc = (pc + imm) & MASK64
            self._block_start = True
        elif opcode == 0x6F:        # JAL
            imm = _sext((((word >> 31) & 1) << 20) | (((word >> 12) & 0xFF) << 12)
                        | (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3FF) << 1), 21)
            state.write_reg(rd, next_pc)
            next_pc = (pc + imm) & MASK64
            self._block_start = True
        elif opcode == 0x67:        # JALR
            imm = _sext(word >> 20, 12)
            target = (state.read_reg(rs1) + imm) & ~1 & MASK64
            state.write_reg(rd, next_pc)
            next_pc = target
            self._block_start = True
        elif opcode == 0x73:        # SYSTEM: CSR ops
            csr = (word >> 20) & 0xFFF
            old = state.csrs.get(csr, 0)
            source = state.read_reg(rs1)
            if funct3 == 0x1:       # CSRRW
                state.csrs[csr] = source
            elif funct3 == 0x2:     # CSRRS
                if rs1 != 0:
                    state.csrs[csr] = old | source
            elif funct3 == 0x3:     # CSRRC
                if rs1 != 0:
                    state.csrs[csr] = old & ~source
            else:
                return self._illegal(word, pc)
            state.write_reg(rd, old)
        elif opcode == 0x0F:        # FENCE
            pass
        else:
            return self._illegal(word, pc)
        state.pc = next_pc
        return None

    def _illegal(self, word: int, pc: int):
        self.state.trap(CAUSE_ILLEGAL, pc, tval=word)
        self.exceptions += 1
        self._block_start = True
        return None


def _as_signed(value: int) -> int:
    return value - (1 << 64) if value >> 63 else value
