"""Two-pass assembler for A64-lite.

Supports labels, the full instruction set of :mod:`repro.arch.isa`, numeric
expressions (decimal, hex, ``label`` references, simple ``+``/``-``), and the
directives:

* ``.org ADDR``      — set the location counter
* ``.word VALUE``    — emit a 32-bit little-endian value
* ``.quad VALUE``    — emit a 64-bit value
* ``.zero N``        — emit N zero bytes
* ``.asciz "text"``  — emit a NUL-terminated string
* ``.align N``       — align the location counter to N bytes
* ``.equ NAME, VAL`` — define a constant
* ``.global NAME``   — export a symbol (all labels are exported anyway;
  kept for familiarity)

Register syntax: ``x0``–``x30``, ``sp`` (= x31), ``lr`` (= x30).
Immediate syntax: ``#123``, ``#0x1f``, ``#SYMBOL``.

The output is a :class:`repro.arch.elf.ElfLite` image whose symbol table the
WFI-annotation engine searches (the ``cpu_do_idle`` lookup from the paper).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .elf import ElfLite, Section, Symbol
from .isa import Cond, Instruction, Op, SysReg, encode

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_TOKEN_SPLIT = re.compile(r"\s*,\s*")


class AssemblerError(Exception):
    def __init__(self, message: str, line_no: int = 0, line: str = ""):
        self.line_no = line_no
        self.line = line
        prefix = f"line {line_no}: " if line_no else ""
        suffix = f"  [{line.strip()}]" if line else ""
        super().__init__(f"{prefix}{message}{suffix}")


_COND_ALIASES = {
    "eq": Cond.EQ, "ne": Cond.NE, "hs": Cond.HS, "cs": Cond.HS,
    "lo": Cond.LO, "cc": Cond.LO, "mi": Cond.MI, "pl": Cond.PL,
    "vs": Cond.VS, "vc": Cond.VC, "hi": Cond.HI, "ls": Cond.LS,
    "ge": Cond.GE, "lt": Cond.LT, "gt": Cond.GT, "le": Cond.LE,
    "al": Cond.AL,
}

_MEM_OPS = {
    "ldr": Op.LDR, "str": Op.STR, "ldrw": Op.LDRW, "strw": Op.STRW,
    "ldrb": Op.LDRB, "strb": Op.STRB,
}

_REG3_OPS = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "udiv": Op.UDIV,
    "urem": Op.UREM, "and": Op.AND, "orr": Op.ORR, "eor": Op.EOR,
}

_REG2_IMM_OPS = {
    "addi": Op.ADDI, "subi": Op.SUBI, "andi": Op.ANDI, "orri": Op.ORRI,
    "eori": Op.EORI, "lsl": Op.LSLI, "lsr": Op.LSRI, "asr": Op.ASRI,
}

_NO_OPERAND_OPS = {
    "nop": Op.NOP, "eret": Op.ERET, "wfi": Op.WFI, "dmb": Op.DMB,
    "yield": Op.YIELD, "udf": Op.UDF,
}


class Assembler:
    """Two-pass assembler producing an :class:`ElfLite` image."""

    def __init__(self, base_address: int = 0):
        self.base_address = base_address

    def assemble(self, source: str, entry_symbol: str = "_start") -> ElfLite:
        lines = self._clean(source)
        symbols, layout = self._pass1(lines)
        blob = self._pass2(lines, symbols, layout)
        section = Section(".text", self.base_address, bytes(blob))
        symbol_table = [Symbol(name, address) for name, address in sorted(symbols.items())]
        entry = symbols.get(entry_symbol, self.base_address)
        return ElfLite(entry=entry, sections=[section], symbols=symbol_table)

    # -- helpers ----------------------------------------------------------
    @staticmethod
    def _clean(source: str) -> List[Tuple[int, str]]:
        """Strip comments and blank lines; keep (line_no, text) pairs."""
        cleaned = []
        for number, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("//")[0].split(";")[0].strip()
            if line:
                cleaned.append((number, line))
        return cleaned

    def _pass1(self, lines) -> Tuple[Dict[str, int], Dict[int, int]]:
        """Resolve label addresses; return (symbols, line->address layout)."""
        symbols: Dict[str, int] = {}
        layout: Dict[int, int] = {}
        counter = self.base_address
        for number, line in lines:
            line = self._strip_labels(line, number, symbols, counter)
            if not line:
                continue
            layout[number] = counter
            counter += self._item_size(line, number, counter, symbols)
        return symbols, layout

    @staticmethod
    def _remove_labels(line: str) -> str:
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                return line
            line = line[match.end():].strip()

    def _strip_labels(self, line: str, number: int, symbols: Dict[str, int],
                      counter: int) -> str:
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                return line
            name = match.group(1)
            if name in symbols:
                raise AssemblerError(f"duplicate label {name!r}", number, line)
            symbols[name] = counter
            line = line[match.end():].strip()

    def _item_size(self, line: str, number: int, counter: int,
                   symbols: Dict[str, int]) -> int:
        mnemonic, operands = self._split(line)
        if mnemonic == ".org":
            target = self._eval(operands[0], symbols, number, line)
            if target < counter:
                raise AssemblerError(f".org 0x{target:x} before current 0x{counter:x}",
                                     number, line)
            return target - counter
        if mnemonic == ".word":
            return 4 * len(operands)
        if mnemonic == ".quad":
            return 8 * len(operands)
        if mnemonic == ".zero":
            return self._eval(operands[0], symbols, number, line)
        if mnemonic == ".asciz":
            return len(self._parse_string(operands[0], number, line)) + 1
        if mnemonic == ".align":
            alignment = self._eval(operands[0], symbols, number, line)
            return (-counter) % alignment
        if mnemonic == ".equ":
            symbols[operands[0]] = self._eval(operands[1], symbols, number, line)
            return 0
        if mnemonic == ".global":
            return 0
        if mnemonic.startswith("."):
            raise AssemblerError(f"unknown directive {mnemonic!r}", number, line)
        return 4

    def _pass2(self, lines, symbols: Dict[str, int], layout: Dict[int, int]) -> bytearray:
        blob = bytearray()
        counter = self.base_address
        for number, line in lines:
            line = self._remove_labels(line)
            if not line:
                continue
            address = layout.get(number, counter)
            if address > counter:
                blob += bytes(address - counter)
                counter = address
            emitted = self._emit(line, number, counter, symbols)
            blob += emitted
            counter += len(emitted)
        return blob

    def _emit(self, line: str, number: int, address: int,
              symbols: Dict[str, int]) -> bytes:
        mnemonic, operands = self._split(line)
        if mnemonic == ".org":
            target = self._eval(operands[0], symbols, number, line)
            return bytes(target - address)
        if mnemonic == ".word":
            out = bytearray()
            for operand in operands:
                out += (self._eval(operand, symbols, number, line) & 0xFFFFFFFF).to_bytes(4, "little")
            return bytes(out)
        if mnemonic == ".quad":
            out = bytearray()
            for operand in operands:
                value = self._eval(operand, symbols, number, line) & ((1 << 64) - 1)
                out += value.to_bytes(8, "little")
            return bytes(out)
        if mnemonic == ".zero":
            return bytes(self._eval(operands[0], symbols, number, line))
        if mnemonic == ".asciz":
            return self._parse_string(operands[0], number, line) + b"\x00"
        if mnemonic == ".align":
            alignment = self._eval(operands[0], symbols, number, line)
            return bytes((-address) % alignment)
        if mnemonic in (".equ", ".global"):
            return b""
        inst = self._parse_instruction(mnemonic, operands, address, symbols, number, line)
        return encode(inst).to_bytes(4, "little")

    # -- instruction parsing --------------------------------------------------
    def _parse_instruction(self, mnemonic: str, operands: List[str], address: int,
                           symbols: Dict[str, int], number: int, line: str) -> Instruction:
        m = mnemonic.lower()

        def reg(index: int) -> int:
            return self._parse_reg(operands[index], number, line)

        def imm(index: int, pc_relative_words: bool = False) -> int:
            return self._parse_imm(operands[index], symbols, number, line)

        def branch_offset(index: int) -> int:
            expr = self._strip_hash(operands[index])
            if expr.strip() == ".":
                return 0        # branch-to-self
            target = self._eval(expr, symbols, number, line)
            delta = target - address
            if delta % 4:
                raise AssemblerError(f"branch target 0x{target:x} not word aligned",
                                     number, line)
            return delta // 4

        if m in _NO_OPERAND_OPS:
            self._expect(operands, 0, number, line)
            return Instruction(_NO_OPERAND_OPS[m])
        if m in ("movz", "movk"):
            op = Op.MOVZ if m == "movz" else Op.MOVK
            shift = 0
            if len(operands) == 3:
                shift_spec = operands[2].lower().replace("lsl", "").strip()
                shift_amount = self._eval(self._strip_hash(shift_spec), symbols, number, line)
                if shift_amount % 16 or shift_amount > 48:
                    raise AssemblerError("movz/movk shift must be 0/16/32/48", number, line)
                shift = shift_amount // 16
            else:
                self._expect(operands, 2, number, line)
            return Instruction(op, rd=reg(0), rm=shift, imm=imm(1))
        if m == "mov":
            self._expect(operands, 2, number, line)
            if operands[1].lstrip().startswith("#"):
                value = imm(1)
                if value < 0 or value > 0xFFFF:
                    raise AssemblerError("mov immediate must fit 16 bits (use movz/movk)",
                                         number, line)
                return Instruction(Op.MOVZ, rd=reg(0), imm=value)
            return Instruction(Op.MOV, rd=reg(0), rn=reg(1))
        if m in ("add", "sub") and len(operands) == 3 and operands[2].lstrip().startswith("#"):
            op = Op.ADDI if m == "add" else Op.SUBI
            return Instruction(op, rd=reg(0), rn=reg(1), imm=imm(2))
        if m in _REG3_OPS:
            self._expect(operands, 3, number, line)
            return Instruction(_REG3_OPS[m], rd=reg(0), rn=reg(1), rm=reg(2))
        if m in _REG2_IMM_OPS:
            self._expect(operands, 3, number, line)
            return Instruction(_REG2_IMM_OPS[m], rd=reg(0), rn=reg(1), imm=imm(2))
        if m == "cmp":
            self._expect(operands, 2, number, line)
            if operands[1].lstrip().startswith("#"):
                return Instruction(Op.CMPI, rn=reg(0), imm=imm(1))
            return Instruction(Op.CMP, rn=reg(0), rm=reg(1))
        if m in _MEM_OPS:
            self._expect(operands, 2, number, line)
            rn, offset = self._parse_mem(operands[1], symbols, number, line)
            return Instruction(_MEM_OPS[m], rd=reg(0), rn=rn, imm=offset)
        if m == "ldxr":
            self._expect(operands, 2, number, line)
            rn, offset = self._parse_mem(operands[1], symbols, number, line)
            if offset:
                raise AssemblerError("ldxr does not take an offset", number, line)
            return Instruction(Op.LDXR, rd=reg(0), rn=rn)
        if m == "stxr":
            self._expect(operands, 3, number, line)
            rn, offset = self._parse_mem(operands[2], symbols, number, line)
            if offset:
                raise AssemblerError("stxr does not take an offset", number, line)
            return Instruction(Op.STXR, rd=reg(0), rn=rn, rm=reg(1))
        if m == "b":
            self._expect(operands, 1, number, line)
            return Instruction(Op.B, imm=branch_offset(0))
        if m == "bl":
            self._expect(operands, 1, number, line)
            return Instruction(Op.BL, imm=branch_offset(0))
        if m.startswith("b.") and m[2:] in _COND_ALIASES:
            self._expect(operands, 1, number, line)
            return Instruction(Op.BCOND, cond=_COND_ALIASES[m[2:]], imm=branch_offset(0))
        if m == "cbz":
            self._expect(operands, 2, number, line)
            return Instruction(Op.CBZ, rd=reg(0), imm=branch_offset(1))
        if m == "cbnz":
            self._expect(operands, 2, number, line)
            return Instruction(Op.CBNZ, rd=reg(0), imm=branch_offset(1))
        if m == "br":
            self._expect(operands, 1, number, line)
            return Instruction(Op.BR, rn=reg(0))
        if m == "ret":
            if operands and operands[0]:
                return Instruction(Op.RET, rn=reg(0))
            return Instruction(Op.RET, rn=30)
        if m == "svc":
            self._expect(operands, 1, number, line)
            return Instruction(Op.SVC, imm=imm(0))
        if m == "hlt":
            self._expect(operands, 1, number, line)
            return Instruction(Op.HLT, imm=imm(0))
        if m == "brk":
            self._expect(operands, 1, number, line)
            return Instruction(Op.BRK, imm=imm(0))
        if m == "mrs":
            self._expect(operands, 2, number, line)
            return Instruction(Op.MRS, rd=reg(0), imm=self._parse_sysreg(operands[1], number, line))
        if m == "msr":
            self._expect(operands, 2, number, line)
            target = operands[0].lower()
            if target in ("daifset", "daifclr"):
                return Instruction(Op.MSRI, rm=1 if target == "daifset" else 0, imm=imm(1))
            return Instruction(Op.MSR, rn=reg(1), imm=self._parse_sysreg(operands[0], number, line))
        if m == "adr":
            self._expect(operands, 2, number, line)
            target = self._eval(self._strip_hash(operands[1]), symbols, number, line)
            return Instruction(Op.ADR, rd=reg(0), imm=target - address)
        raise AssemblerError(f"unknown mnemonic {mnemonic!r}", number, line)

    # -- operand helpers -----------------------------------------------------------
    @staticmethod
    def _split(line: str) -> Tuple[str, List[str]]:
        parts = line.split(None, 1)
        mnemonic = parts[0]
        if len(parts) == 1:
            return mnemonic, []
        rest = parts[1]
        # Memory operands contain commas inside brackets; split carefully.
        operands, depth, current, in_string = [], 0, "", False
        for char in rest:
            if char == '"':
                in_string = not in_string
            elif not in_string:
                if char == "[":
                    depth += 1
                elif char == "]":
                    depth -= 1
            if char == "," and depth == 0 and not in_string:
                operands.append(current.strip())
                current = ""
            else:
                current += char
        if current.strip():
            operands.append(current.strip())
        return mnemonic, operands

    @staticmethod
    def _expect(operands: List[str], count: int, number: int, line: str) -> None:
        if len(operands) != count:
            raise AssemblerError(f"expected {count} operands, got {len(operands)}",
                                 number, line)

    @staticmethod
    def _parse_reg(token: str, number: int, line: str) -> int:
        t = token.strip().lower()
        if t == "sp":
            return 31
        if t == "lr":
            return 30
        if t == "xzr":
            raise AssemblerError("A64-lite has no zero register; use an immediate",
                                 number, line)
        if t.startswith("x") and t[1:].isdigit():
            index = int(t[1:])
            if 0 <= index <= 30:
                return index
        raise AssemblerError(f"bad register {token!r}", number, line)

    @staticmethod
    def _strip_hash(token: str) -> str:
        token = token.strip()
        return token[1:] if token.startswith("#") else token

    def _parse_imm(self, token: str, symbols: Dict[str, int], number: int,
                   line: str) -> int:
        return self._eval(self._strip_hash(token), symbols, number, line)

    def _parse_mem(self, token: str, symbols: Dict[str, int], number: int,
                   line: str) -> Tuple[int, int]:
        t = token.strip()
        if not (t.startswith("[") and t.endswith("]")):
            raise AssemblerError(f"bad memory operand {token!r}", number, line)
        inner = t[1:-1].strip()
        if "," in inner:
            base, offset = inner.split(",", 1)
            return (self._parse_reg(base, number, line),
                    self._eval(self._strip_hash(offset), symbols, number, line))
        return self._parse_reg(inner, number, line), 0

    @staticmethod
    def _parse_sysreg(token: str, number: int, line: str) -> int:
        name = token.strip().upper()
        try:
            return int(SysReg[name])
        except KeyError:
            pass
        try:
            value = int(token.strip(), 0)     # raw encoding (implementation-defined regs)
        except ValueError:
            raise AssemblerError(f"unknown system register {token!r}", number, line) from None
        if not 0 <= value <= 0xFFFF:
            raise AssemblerError(f"system-register id out of range: {token!r}", number, line)
        return value

    @staticmethod
    def _parse_string(token: str, number: int, line: str) -> bytes:
        t = token.strip()
        if len(t) < 2 or t[0] != '"' or t[-1] != '"':
            raise AssemblerError(f"bad string literal {token!r}", number, line)
        body = t[1:-1]
        return body.encode("utf-8").decode("unicode_escape").encode("latin-1")

    def _eval(self, expression: str, symbols: Dict[str, int], number: int,
              line: str) -> int:
        """Evaluate NUMBER | SYMBOL | expr (+|-) expr, left to right."""
        text = expression.strip()
        if not text:
            raise AssemblerError("empty expression", number, line)
        tokens = re.findall(r"[+\-]|[^+\-\s]+", text)
        total, sign, saw_operand = 0, 1, False
        for token in tokens:
            if token == "+":
                continue
            if token == "-":
                sign = -sign
                continue
            total += sign * self._atom(token, symbols, number, line)
            sign = 1
            saw_operand = True
        if not saw_operand:
            raise AssemblerError(f"expression has no operand: {expression!r}", number, line)
        return total

    @staticmethod
    def _atom(token: str, symbols: Dict[str, int], number: int, line: str) -> int:
        t = token.strip()
        try:
            return int(t, 0)
        except ValueError:
            pass
        if t in symbols:
            return symbols[t]
        raise AssemblerError(f"undefined symbol {t!r}", number, line)


def assemble(source: str, base_address: int = 0, entry_symbol: str = "_start") -> ElfLite:
    """One-shot convenience wrapper around :class:`Assembler`."""
    return Assembler(base_address).assemble(source, entry_symbol)
