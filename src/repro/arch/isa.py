"""A64-lite: the guest instruction set.

A compact, ARMv8-flavoured 64-bit RISC ISA used as the *target* architecture
of the virtual platforms.  It is expressive enough to run the repository's
bare-metal workloads and the synthetic Linux kernel: two exception levels
(EL0/EL1), system registers, IRQ/SVC exceptions, WFI, exclusive monitors for
spinlocks, and an MMU.

Instructions are fixed 32-bit words with a uniform custom encoding (this is
a didactic encoding, *not* binary-compatible with real A64):

    word[31:26]  opcode
    word[25:21]  rd / rt
    word[20:16]  rn
    word[15:11]  rm / rs
    word[15:0]   imm16 (register-less forms)
    ...          per-opcode immediate layouts, documented on each opcode

Register index 31 addresses the stack pointer; x0–x30 are general purpose
(x30 doubles as the link register, as on real ARM).
"""

from __future__ import annotations

import enum
from typing import NamedTuple

WORD_SIZE = 4
NUM_REGS = 32
SP = 31
LR = 30


class Op(enum.IntEnum):
    """Opcode space (6 bits)."""

    NOP = 0
    MOVZ = 1      # rd, imm16, shift(0/16/32/48)
    MOVK = 2      # rd, imm16, shift
    ADDI = 3      # rd, rn, uimm12
    SUBI = 4      # rd, rn, uimm12
    ADD = 5       # rd, rn, rm
    SUB = 6       # rd, rn, rm
    MUL = 7       # rd, rn, rm
    UDIV = 8      # rd, rn, rm (div by zero -> 0, as on ARM)
    UREM = 9      # rd, rn, rm (remainder; by zero -> rn)
    AND = 10      # rd, rn, rm
    ORR = 11      # rd, rn, rm
    EOR = 12      # rd, rn, rm
    ANDI = 13     # rd, rn, uimm11
    ORRI = 14     # rd, rn, uimm11
    EORI = 15     # rd, rn, uimm11
    LSLI = 16     # rd, rn, uimm6
    LSRI = 17     # rd, rn, uimm6
    ASRI = 18     # rd, rn, uimm6
    CMP = 19      # rn, rm (SUBS discarding result)
    CMPI = 20     # rn, uimm12
    MOV = 21      # rd, rn
    LDR = 22      # rd, [rn + simm16] (8 bytes)
    STR = 23      # rd, [rn + simm16]
    LDRW = 24     # rd, [rn + simm16] (4 bytes, zero-extend)
    STRW = 25     # rd, [rn + simm16]
    LDRB = 26     # rd, [rn + simm16] (1 byte, zero-extend)
    STRB = 27     # rd, [rn + simm16]
    LDXR = 28     # rd, [rn] (exclusive)
    STXR = 29     # rs, rd, [rn] (rs = 0 success / 1 fail)
    B = 30        # simm26 (word offset)
    BL = 31       # simm26
    BCOND = 32    # cond(4), simm22 (word offset)
    CBZ = 33      # rt, simm21 (word offset)
    CBNZ = 34     # rt, simm21
    BR = 35       # rn
    RET = 36      # rn (defaults to x30)
    SVC = 37      # imm16
    ERET = 38
    MRS = 39      # rd, sysreg16
    MSR = 40      # sysreg16, rn
    MSRI = 41     # DAIF set/clear: op(1) | imm2 (I-bit mask ops)
    WFI = 42
    HLT = 43      # imm16 (simulation exit / semihosting)
    BRK = 44      # imm16 (breakpoint -> sync exception)
    DMB = 45      # barrier (architectural no-op here)
    ADR = 46      # rd, simm21 (byte offset, PC-relative)
    UDF = 47      # undefined instruction -> sync exception
    YIELD = 48    # hint, no-op


class Cond(enum.IntEnum):
    EQ = 0
    NE = 1
    HS = 2
    LO = 3
    MI = 4
    PL = 5
    VS = 6
    VC = 7
    HI = 8
    LS = 9
    GE = 10
    LT = 11
    GT = 12
    LE = 13
    AL = 14


class SysReg(enum.IntEnum):
    """System registers reachable via MRS/MSR (16-bit id space)."""

    VBAR_EL1 = 0x000
    ELR_EL1 = 0x001
    SPSR_EL1 = 0x002
    ESR_EL1 = 0x003
    FAR_EL1 = 0x004
    SCTLR_EL1 = 0x005
    TTBR0_EL1 = 0x006
    MAIR_EL1 = 0x007
    MPIDR_EL1 = 0x008
    CURRENT_EL = 0x009
    DAIF = 0x00A
    CNTFRQ_EL0 = 0x00B
    CNTVCT_EL0 = 0x00C
    TPIDR_EL0 = 0x00D
    TPIDR_EL1 = 0x00E
    MIDR_EL1 = 0x00F
    SP_EL0 = 0x010


class Instruction(NamedTuple):
    """A decoded instruction.  Fields unused by an opcode are zero."""

    op: Op
    rd: int = 0
    rn: int = 0
    rm: int = 0
    imm: int = 0
    cond: Cond = Cond.AL

    def __repr__(self) -> str:
        return (
            f"Instruction({self.op.name}, rd={self.rd}, rn={self.rn}, "
            f"rm={self.rm}, imm={self.imm}, cond={self.cond.name})"
        )


class DecodeError(Exception):
    """Raised on malformed instruction words."""


def _check_reg(value: int, what: str) -> int:
    if not 0 <= value < NUM_REGS:
        raise DecodeError(f"{what} out of range: {value}")
    return value


def _signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _unsigned(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


# Immediate layout metadata: opcode -> (kind)
_REG3 = {Op.ADD, Op.SUB, Op.MUL, Op.UDIV, Op.UREM, Op.AND, Op.ORR, Op.EOR}
_REG2_IMM12 = {Op.ADDI, Op.SUBI}
_REG2_IMM11 = {Op.ANDI, Op.ORRI, Op.EORI}
_REG2_IMM6 = {Op.LSLI, Op.LSRI, Op.ASRI}
_MEM = {Op.LDR, Op.STR, Op.LDRW, Op.STRW, Op.LDRB, Op.STRB}
_IMM16_ONLY = {Op.SVC, Op.HLT, Op.BRK}
_NO_OPERANDS = {Op.NOP, Op.ERET, Op.WFI, Op.DMB, Op.YIELD, Op.UDF}


def encode(inst: Instruction) -> int:
    """Encode a decoded instruction back to its 32-bit word."""
    op = Op(inst.op)
    word = int(op) << 26
    if op in _NO_OPERANDS:
        return word
    if op in (Op.MOVZ, Op.MOVK):
        if inst.imm & 0xFFFF != inst.imm:
            raise DecodeError(f"{op.name} imm16 out of range: {inst.imm}")
        if inst.rm not in (0, 1, 2, 3):
            raise DecodeError(f"{op.name} shift slot must encode 0..3, got {inst.rm}")
        # layout: rd[25:21] shift[17:16] imm16[15:0]
        return word | (inst.rd << 21) | (inst.rm << 16) | inst.imm
    if op in _REG3:
        return word | (inst.rd << 21) | (inst.rn << 16) | (inst.rm << 11)
    if op in _REG2_IMM12:
        return word | (inst.rd << 21) | (inst.rn << 16) | _unsigned(inst.imm, 12)
    if op in _REG2_IMM11:
        return word | (inst.rd << 21) | (inst.rn << 16) | _unsigned(inst.imm, 11)
    if op in _REG2_IMM6:
        return word | (inst.rd << 21) | (inst.rn << 16) | _unsigned(inst.imm, 6)
    if op is Op.CMP:
        return word | (inst.rn << 16) | (inst.rm << 11)
    if op is Op.CMPI:
        return word | (inst.rn << 16) | _unsigned(inst.imm, 12)
    if op is Op.MOV:
        return word | (inst.rd << 21) | (inst.rn << 16)
    if op in _MEM:
        return word | (inst.rd << 21) | (inst.rn << 16) | _unsigned(inst.imm, 16)
    if op is Op.LDXR:
        return word | (inst.rd << 21) | (inst.rn << 16)
    if op is Op.STXR:
        return word | (inst.rd << 21) | (inst.rn << 16) | (inst.rm << 11)
    if op in (Op.B, Op.BL):
        return word | _unsigned(inst.imm, 26)
    if op is Op.BCOND:
        return word | (int(inst.cond) << 22) | _unsigned(inst.imm, 22)
    if op in (Op.CBZ, Op.CBNZ):
        return word | (inst.rd << 21) | _unsigned(inst.imm, 21)
    if op in (Op.BR, Op.RET):
        return word | (inst.rn << 16)
    if op in _IMM16_ONLY:
        return word | _unsigned(inst.imm, 16)
    if op is Op.MRS:
        return word | (inst.rd << 21) | _unsigned(inst.imm, 16)
    if op is Op.MSR:
        return word | (inst.rn << 16) | _unsigned(inst.imm, 16)
    if op is Op.MSRI:
        # rm bit0: 1=set, 0=clear; imm: DAIF mask bits
        return word | ((inst.rm & 1) << 21) | _unsigned(inst.imm, 4)
    if op is Op.ADR:
        return word | (inst.rd << 21) | _unsigned(inst.imm, 21)
    raise DecodeError(f"cannot encode opcode {op!r}")


def decode(word: int) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`."""
    if not 0 <= word < (1 << 32):
        raise DecodeError(f"instruction word out of range: {word:#x}")
    opcode = (word >> 26) & 0x3F
    try:
        op = Op(opcode)
    except ValueError:
        raise DecodeError(f"unknown opcode {opcode} in word {word:#010x}") from None
    if op in _NO_OPERANDS:
        return Instruction(op)
    rd = (word >> 21) & 0x1F
    rn = (word >> 16) & 0x1F
    rm = (word >> 11) & 0x1F
    imm16 = word & 0xFFFF
    if op in (Op.MOVZ, Op.MOVK):
        return Instruction(op, rd=rd, rm=(word >> 16) & 0x3, imm=imm16)
    if op in _REG3:
        return Instruction(op, rd=rd, rn=rn, rm=rm)
    if op in _REG2_IMM12:
        return Instruction(op, rd=rd, rn=rn, imm=word & 0xFFF)
    if op in _REG2_IMM11:
        return Instruction(op, rd=rd, rn=rn, imm=word & 0x7FF)
    if op in _REG2_IMM6:
        return Instruction(op, rd=rd, rn=rn, imm=word & 0x3F)
    if op is Op.CMP:
        return Instruction(op, rn=rn, rm=rm)
    if op is Op.CMPI:
        return Instruction(op, rn=rn, imm=word & 0xFFF)
    if op is Op.MOV:
        return Instruction(op, rd=rd, rn=rn)
    if op in _MEM:
        return Instruction(op, rd=rd, rn=rn, imm=_signed(imm16, 16))
    if op is Op.LDXR:
        return Instruction(op, rd=rd, rn=rn)
    if op is Op.STXR:
        return Instruction(op, rd=rd, rn=rn, rm=rm)
    if op in (Op.B, Op.BL):
        return Instruction(op, imm=_signed(word & 0x3FFFFFF, 26))
    if op is Op.BCOND:
        cond = Cond((word >> 22) & 0xF)
        return Instruction(op, cond=cond, imm=_signed(word & 0x3FFFFF, 22))
    if op in (Op.CBZ, Op.CBNZ):
        return Instruction(op, rd=rd, imm=_signed(word & 0x1FFFFF, 21))
    if op in (Op.BR, Op.RET):
        return Instruction(op, rn=rn)
    if op in _IMM16_ONLY:
        return Instruction(op, imm=imm16)
    if op is Op.MRS:
        return Instruction(op, rd=rd, imm=imm16)
    if op is Op.MSR:
        return Instruction(op, rn=rn, imm=imm16)
    if op is Op.MSRI:
        return Instruction(op, rm=(word >> 21) & 1, imm=word & 0xF)
    if op is Op.ADR:
        return Instruction(op, rd=rd, imm=_signed(word & 0x1FFFFF, 21))
    raise DecodeError(f"unhandled opcode in decode: {op!r}")  # pragma: no cover


#: Opcodes that terminate a basic block (used by the DBT cost model).
BLOCK_TERMINATORS = frozenset({
    Op.B, Op.BL, Op.BCOND, Op.CBZ, Op.CBNZ, Op.BR, Op.RET,
    Op.SVC, Op.ERET, Op.HLT, Op.BRK, Op.UDF, Op.WFI,
})

#: Opcodes that access data memory (used by the ISS software-MMU cost model).
MEMORY_OPS = frozenset({
    Op.LDR, Op.STR, Op.LDRW, Op.STRW, Op.LDRB, Op.STRB, Op.LDXR, Op.STXR,
})
