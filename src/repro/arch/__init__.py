"""A64-lite guest architecture: ISA, assembler, ELF-lite images, CPU state,
exceptions and the stage-1 MMU."""

from .assembler import Assembler, AssemblerError, assemble
from .elf import ElfLite, Section, Symbol
from .exceptions import (
    ExceptionClass,
    GuestFault,
    do_eret,
    esr_class,
    make_esr,
    take_irq,
    take_sync_exception,
)
from .isa import (
    BLOCK_TERMINATORS,
    MEMORY_OPS,
    WORD_SIZE,
    Cond,
    DecodeError,
    Instruction,
    Op,
    SysReg,
    decode,
    encode,
)
from .mmu import Mmu, PageTableBuilder, Tlb
from .registers import MASK64, CpuState

__all__ = [
    "Assembler",
    "AssemblerError",
    "BLOCK_TERMINATORS",
    "Cond",
    "CpuState",
    "DecodeError",
    "ElfLite",
    "ExceptionClass",
    "GuestFault",
    "Instruction",
    "MASK64",
    "MEMORY_OPS",
    "Mmu",
    "Op",
    "PageTableBuilder",
    "Section",
    "Symbol",
    "SysReg",
    "Tlb",
    "WORD_SIZE",
    "assemble",
    "decode",
    "do_eret",
    "encode",
    "esr_class",
    "make_esr",
    "take_irq",
    "take_sync_exception",
]
