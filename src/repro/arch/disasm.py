"""A64-lite disassembler.

Produces assembler-compatible text for decoded instructions — the output
round-trips through :mod:`repro.arch.assembler` (property-tested), which
makes it safe to use in the debugger, trace logs and error messages.
"""

from __future__ import annotations

from typing import Optional

from .isa import Cond, DecodeError, Instruction, Op, SysReg, decode

_REG3_MNEMONICS = {
    Op.ADD: "add", Op.SUB: "sub", Op.MUL: "mul", Op.UDIV: "udiv",
    Op.UREM: "urem", Op.AND: "and", Op.ORR: "orr", Op.EOR: "eor",
}

_IMM_MNEMONICS = {
    Op.ADDI: "add", Op.SUBI: "sub", Op.ANDI: "andi", Op.ORRI: "orri",
    Op.EORI: "eori", Op.LSLI: "lsl", Op.LSRI: "lsr", Op.ASRI: "asr",
}

_MEM_MNEMONICS = {
    Op.LDR: "ldr", Op.STR: "str", Op.LDRW: "ldrw", Op.STRW: "strw",
    Op.LDRB: "ldrb", Op.STRB: "strb",
}

_PLAIN_MNEMONICS = {
    Op.NOP: "nop", Op.ERET: "eret", Op.WFI: "wfi", Op.DMB: "dmb",
    Op.YIELD: "yield", Op.UDF: "udf",
}

_COND_NAMES = {
    Cond.EQ: "eq", Cond.NE: "ne", Cond.HS: "hs", Cond.LO: "lo",
    Cond.MI: "mi", Cond.PL: "pl", Cond.VS: "vs", Cond.VC: "vc",
    Cond.HI: "hi", Cond.LS: "ls", Cond.GE: "ge", Cond.LT: "lt",
    Cond.GT: "gt", Cond.LE: "le", Cond.AL: "al",
}


def _reg(index: int) -> str:
    if index == 31:
        return "sp"
    return f"x{index}"


def _sysreg(value: int) -> str:
    try:
        return SysReg(value).name
    except ValueError:
        return f"0x{value:x}"


def _target(pc: Optional[int], word_offset: int) -> str:
    """Branch target: absolute if the pc is known, else relative."""
    if pc is not None:
        return f"0x{(pc + 4 * word_offset) & ((1 << 64) - 1):x}"
    sign = "+" if word_offset >= 0 else "-"
    return f".{sign}{abs(4 * word_offset)}"


def format_instruction(inst: Instruction, pc: Optional[int] = None) -> str:
    """Render one decoded instruction as assembly text."""
    op = inst.op
    if op in _PLAIN_MNEMONICS:
        return _PLAIN_MNEMONICS[op]
    if op is Op.MOVZ or op is Op.MOVK:
        mnemonic = "movz" if op is Op.MOVZ else "movk"
        text = f"{mnemonic} {_reg(inst.rd)}, #0x{inst.imm:x}"
        if inst.rm:
            text += f", lsl #{16 * inst.rm}"
        return text
    if op in _REG3_MNEMONICS:
        return (f"{_REG3_MNEMONICS[op]} {_reg(inst.rd)}, {_reg(inst.rn)}, "
                f"{_reg(inst.rm)}")
    if op in _IMM_MNEMONICS:
        return f"{_IMM_MNEMONICS[op]} {_reg(inst.rd)}, {_reg(inst.rn)}, #{inst.imm}"
    if op is Op.CMP:
        return f"cmp {_reg(inst.rn)}, {_reg(inst.rm)}"
    if op is Op.CMPI:
        return f"cmp {_reg(inst.rn)}, #{inst.imm}"
    if op is Op.MOV:
        return f"mov {_reg(inst.rd)}, {_reg(inst.rn)}"
    if op in _MEM_MNEMONICS:
        if inst.imm:
            return (f"{_MEM_MNEMONICS[op]} {_reg(inst.rd)}, "
                    f"[{_reg(inst.rn)}, #{inst.imm}]")
        return f"{_MEM_MNEMONICS[op]} {_reg(inst.rd)}, [{_reg(inst.rn)}]"
    if op is Op.LDXR:
        return f"ldxr {_reg(inst.rd)}, [{_reg(inst.rn)}]"
    if op is Op.STXR:
        return f"stxr {_reg(inst.rd)}, {_reg(inst.rm)}, [{_reg(inst.rn)}]"
    if op is Op.B:
        return f"b {_target(pc, inst.imm)}"
    if op is Op.BL:
        return f"bl {_target(pc, inst.imm)}"
    if op is Op.BCOND:
        return f"b.{_COND_NAMES[inst.cond]} {_target(pc, inst.imm)}"
    if op is Op.CBZ:
        return f"cbz {_reg(inst.rd)}, {_target(pc, inst.imm)}"
    if op is Op.CBNZ:
        return f"cbnz {_reg(inst.rd)}, {_target(pc, inst.imm)}"
    if op is Op.BR:
        return f"br {_reg(inst.rn)}"
    if op is Op.RET:
        return "ret" if inst.rn == 30 else f"ret {_reg(inst.rn)}"
    if op is Op.SVC:
        return f"svc #{inst.imm}"
    if op is Op.HLT:
        return f"hlt #{inst.imm}"
    if op is Op.BRK:
        return f"brk #{inst.imm}"
    if op is Op.MRS:
        return f"mrs {_reg(inst.rd)}, {_sysreg(inst.imm)}"
    if op is Op.MSR:
        return f"msr {_sysreg(inst.imm)}, {_reg(inst.rn)}"
    if op is Op.MSRI:
        return f"msr {'daifset' if inst.rm else 'daifclr'}, #{inst.imm}"
    if op is Op.ADR:
        if pc is not None:
            return f"adr {_reg(inst.rd)}, 0x{(pc + inst.imm) & ((1 << 64) - 1):x}"
        return f"adr {_reg(inst.rd)}, .{'+' if inst.imm >= 0 else '-'}{abs(inst.imm)}"
    raise ValueError(f"cannot format {inst!r}")  # pragma: no cover


def disassemble_word(word: int, pc: Optional[int] = None) -> str:
    """Decode + format one 32-bit word; undecodable words become .word."""
    try:
        return format_instruction(decode(word), pc)
    except DecodeError:
        return f".word 0x{word:08x}"


def disassemble_range(read_word, start: int, count: int, symbol_at=None):
    """Yield ``(address, word, text)`` for ``count`` words from ``start``.

    ``read_word(address)`` returns the 32-bit word or None; ``symbol_at``
    optionally maps an address to a symbol name for annotation.
    """
    for index in range(count):
        address = start + 4 * index
        word = read_word(address)
        if word is None:
            yield address, None, "<unmapped>"
            continue
        text = disassemble_word(word, pc=address)
        if symbol_at is not None:
            name = symbol_at(address)
            if name is not None:
                text = f"{text:<32} // {name}"
        yield address, word, text
