"""ELF-lite: the executable image format of the guest software.

A minimal ELF-shaped container: loadable sections (address + bytes), a
symbol table, and an entry point.  It supports binary serialization with a
magic header so images can be written to and loaded from disk.

The symbol table is load-bearing for the paper's WFI-annotation technique:
the VP searches the target software's image for the ``cpu_do_idle`` symbol
and plants a breakpoint on the ``WFI`` instruction inside it
(Section IV-C).  :meth:`ElfLite.find_symbol` and
:meth:`ElfLite.find_instruction` implement that search.
"""

from __future__ import annotations

import io
import struct
from typing import Callable, List, NamedTuple, Optional

from .isa import WORD_SIZE, Instruction, Op, decode

MAGIC = b"\x7fELFL"
VERSION = 1


class Symbol(NamedTuple):
    name: str
    address: int


class Section(NamedTuple):
    name: str
    address: int
    data: bytes

    @property
    def end(self) -> int:
        return self.address + len(self.data)

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end


class ElfLite:
    """An executable guest image."""

    def __init__(self, entry: int, sections: List[Section], symbols: List[Symbol]):
        self.entry = entry
        self.sections = list(sections)
        self.symbols = list(symbols)
        self._symbol_map = {symbol.name: symbol.address for symbol in self.symbols}

    # -- symbols -----------------------------------------------------------
    def find_symbol(self, name: str) -> Optional[int]:
        """Address of ``name``, or None (step 1 of the WFI annotation)."""
        return self._symbol_map.get(name)

    def require_symbol(self, name: str) -> int:
        address = self.find_symbol(name)
        if address is None:
            raise KeyError(f"symbol {name!r} not found in image")
        return address

    def symbol_at(self, address: int) -> Optional[str]:
        """Name of the last symbol at or before ``address`` (for tracing)."""
        best_name, best_address = None, -1
        for symbol in self.symbols:
            if best_address < symbol.address <= address:
                best_name, best_address = symbol.name, symbol.address
        return best_name

    def add_symbol(self, name: str, address: int) -> None:
        self.symbols.append(Symbol(name, address))
        self._symbol_map[name] = address

    # -- section data -----------------------------------------------------------
    def read(self, address: int, length: int) -> Optional[bytes]:
        for section in self.sections:
            if section.contains(address) and address + length <= section.end:
                offset = address - section.address
                return section.data[offset:offset + length]
        return None

    def read_word(self, address: int) -> Optional[int]:
        raw = self.read(address, WORD_SIZE)
        return None if raw is None else int.from_bytes(raw, "little")

    def find_instruction(
        self,
        op: Op,
        start: int,
        limit_words: int = 256,
        stop_predicate: Optional[Callable[[Instruction], bool]] = None,
    ) -> Optional[int]:
        """Scan forward from ``start`` for the first instruction with opcode
        ``op`` (step 2 of the WFI annotation: locate WFI inside
        ``cpu_do_idle``).  Stops at undecodable words, after ``limit_words``,
        or when ``stop_predicate`` matches (e.g. a RET ending the function).
        """
        address = start
        for _ in range(limit_words):
            word = self.read_word(address)
            if word is None:
                return None
            try:
                inst = decode(word)
            except Exception:
                return None
            if inst.op is op:
                return address
            if stop_predicate is not None and stop_predicate(inst):
                return None
            address += WORD_SIZE
        return None

    # -- loading ----------------------------------------------------------------
    def load_into(self, write: Callable[[int, bytes], None]) -> None:
        """Copy all sections into memory via ``write(address, data)``."""
        for section in self.sections:
            write(section.address, section.data)

    @property
    def load_size(self) -> int:
        return sum(len(section.data) for section in self.sections)

    # -- serialization --------------------------------------------------------------
    def to_bytes(self) -> bytes:
        out = io.BytesIO()
        out.write(MAGIC)
        out.write(struct.pack("<HHQ", VERSION, 0, self.entry))
        out.write(struct.pack("<II", len(self.sections), len(self.symbols)))
        for section in self.sections:
            name = section.name.encode()
            out.write(struct.pack("<HQI", len(name), section.address, len(section.data)))
            out.write(name)
            out.write(section.data)
        for symbol in self.symbols:
            name = symbol.name.encode()
            out.write(struct.pack("<HQ", len(name), symbol.address))
            out.write(name)
        return out.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ElfLite":
        stream = io.BytesIO(blob)
        if stream.read(5) != MAGIC:
            raise ValueError("not an ELF-lite image (bad magic)")
        version, _flags, entry = struct.unpack("<HHQ", stream.read(12))
        if version != VERSION:
            raise ValueError(f"unsupported ELF-lite version {version}")
        section_count, symbol_count = struct.unpack("<II", stream.read(8))
        sections, symbols = [], []
        for _ in range(section_count):
            name_len, address, data_len = struct.unpack("<HQI", stream.read(14))
            name = stream.read(name_len).decode()
            data = stream.read(data_len)
            sections.append(Section(name, address, data))
        for _ in range(symbol_count):
            name_len, address = struct.unpack("<HQ", stream.read(10))
            name = stream.read(name_len).decode()
            symbols.append(Symbol(name, address))
        return cls(entry, sections, symbols)

    def __repr__(self) -> str:
        return (
            f"ElfLite(entry=0x{self.entry:x}, sections={len(self.sections)}, "
            f"symbols={len(self.symbols)}, bytes={self.load_size})"
        )
