"""Stage-1 MMU: 3-level page-table walk, permissions and a TLB.

Layout (ARMv8 4 KiB granule, 39-bit VA, reduced):

* L1 index = VA[38:30] (1 GiB per entry), L2 = VA[29:21] (2 MiB),
  L3 = VA[20:12] (4 KiB), page offset = VA[11:0].
* Descriptor format (64-bit little endian in guest memory):

  ======  =========================================
  bit 0   VALID
  bit 1   TABLE — at L1/L2: points to next level; at L3: must be set
  bit 6   AP_EL0 — EL0 access permitted
  bit 7   AP_RO — read-only
  [47:12] output address (table or block/page base)
  ======  =========================================

Translation is enabled by ``SCTLR_EL1.M`` (bit 0) and rooted at
``TTBR0_EL1``.  The TLB caches page-granule translations and counts
hits/misses — the DBT-ISS cost model charges software-walk time per miss,
which is one of the asymmetries behind the STREAM results (Fig. 7): the
AoA model gets the walk for free from the host's hardware two-stage MMU.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from .exceptions import ExceptionClass, GuestFault
from .isa import SysReg
from .registers import CpuState

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

DESC_VALID = 1 << 0
DESC_TABLE = 1 << 1
DESC_AP_EL0 = 1 << 6
DESC_AP_RO = 1 << 7
DESC_ADDR_MASK = ((1 << 48) - 1) & ~PAGE_MASK

_LEVEL_SHIFTS = (30, 21, 12)
_INDEX_MASK = 0x1FF


class Tlb:
    """A software model of a translation lookaside buffer."""

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._entries: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, vpage: int, el: int) -> Optional[Tuple[int, int]]:
        entry = self._entries.get((vpage, el))
        if entry is not None:
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def insert(self, vpage: int, el: int, ppage: int, flags: int) -> None:
        if len(self._entries) >= self.capacity:
            # Simple FIFO-ish eviction: drop an arbitrary (oldest) entry.
            self._entries.pop(next(iter(self._entries)))
        self._entries[(vpage, el)] = (ppage, flags)

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class Mmu:
    """Stage-1 translation engine bound to one core's state."""

    def __init__(self, state: CpuState, read_phys: Callable[[int, int], bytes],
                 tlb_capacity: int = 512):
        self.state = state
        self._read_phys = read_phys
        self.tlb = Tlb(tlb_capacity)
        self.walks = 0

    @property
    def enabled(self) -> bool:
        return bool(self.state.read_sysreg(SysReg.SCTLR_EL1) & 1)

    def flush_tlb(self) -> None:
        self.tlb.flush()

    # -- translation ---------------------------------------------------------
    def translate(self, va: int, write: bool = False, fetch: bool = False) -> int:
        """Translate ``va`` to a physical address or raise :class:`GuestFault`."""
        if not self.enabled:
            return va
        el = self.state.el
        vpage = va >> PAGE_SHIFT
        cached = self.tlb.lookup(vpage, el)
        if cached is not None:
            ppage, flags = cached
            self._check_permissions(va, flags, write, fetch)
            return (ppage << PAGE_SHIFT) | (va & PAGE_MASK)
        ppage, flags, page_shift = self._walk(va, fetch)
        # Cache at 4 KiB granularity regardless of the mapping's block size.
        block_base_vpage = (va >> page_shift) << (page_shift - PAGE_SHIFT)
        offset_pages = vpage - block_base_vpage
        self.tlb.insert(vpage, el, ppage + offset_pages, flags)
        self._check_permissions(va, flags, write, fetch)
        return ((ppage + offset_pages) << PAGE_SHIFT) | (va & PAGE_MASK)

    def _check_permissions(self, va: int, flags: int, write: bool, fetch: bool) -> None:
        ec = ExceptionClass.INSTRUCTION_ABORT if fetch else ExceptionClass.DATA_ABORT
        if self.state.el == 0 and not flags & DESC_AP_EL0:
            raise GuestFault(ec, iss=0xF, fault_address=va,
                             message=f"EL0 permission fault at 0x{va:x}")
        if write and flags & DESC_AP_RO:
            raise GuestFault(ec, iss=0xE, fault_address=va,
                             message=f"write to read-only page at 0x{va:x}")

    def _walk(self, va: int, fetch: bool) -> Tuple[int, int, int]:
        """Walk the tables; return (output page frame, flags, mapping shift)."""
        self.walks += 1
        ec = ExceptionClass.INSTRUCTION_ABORT if fetch else ExceptionClass.DATA_ABORT
        if va >> 39:
            raise GuestFault(ec, iss=0x0, fault_address=va,
                             message=f"VA 0x{va:x} exceeds 39-bit space")
        table = self.state.read_sysreg(SysReg.TTBR0_EL1) & DESC_ADDR_MASK
        for level, shift in enumerate(_LEVEL_SHIFTS):
            index = (va >> shift) & _INDEX_MASK
            raw = self._read_phys(table + index * 8, 8)
            descriptor = int.from_bytes(raw, "little")
            if not descriptor & DESC_VALID:
                raise GuestFault(ec, iss=0x4 + level, fault_address=va,
                                 message=f"translation fault L{level + 1} at 0x{va:x}")
            out = descriptor & DESC_ADDR_MASK
            is_last_level = shift == PAGE_SHIFT
            if is_last_level:
                if not descriptor & DESC_TABLE:
                    raise GuestFault(ec, iss=0x4 + level, fault_address=va,
                                     message=f"reserved L3 descriptor at 0x{va:x}")
                return out >> PAGE_SHIFT, descriptor & 0xFF, shift
            if descriptor & DESC_TABLE:
                table = out
                continue
            # Block mapping at L1 (1 GiB) or L2 (2 MiB).
            block_mask = (1 << shift) - 1
            base = (out & ~block_mask) >> PAGE_SHIFT
            return base, descriptor & 0xFF, shift
        raise AssertionError("unreachable")  # pragma: no cover


class PageTableBuilder:
    """Builds stage-1 page tables directly in guest physical memory.

    VP loaders use this to prepare the tables a real bootloader/kernel would
    construct, so guest programs only need to load TTBR0 and flip SCTLR.M.
    """

    def __init__(self, memory: bytearray, table_base: int, phys_base: int = 0):
        """``table_base`` is the guest-physical address of the table pool;
        ``phys_base`` is the guest-physical address ``memory[0]`` maps to."""
        self.memory = memory
        self.phys_base = phys_base
        self.pool_next = table_base
        self.root = self._alloc_table()

    def _alloc_table(self) -> int:
        address = self.pool_next
        offset = address - self.phys_base
        if offset < 0 or offset + PAGE_SIZE > len(self.memory):
            raise ValueError("page-table pool outside backing memory")
        self.memory[offset:offset + PAGE_SIZE] = bytes(PAGE_SIZE)
        self.pool_next += PAGE_SIZE
        return address

    def _read_desc(self, table: int, index: int) -> int:
        offset = table - self.phys_base + index * 8
        return int.from_bytes(self.memory[offset:offset + 8], "little")

    def _write_desc(self, table: int, index: int, value: int) -> None:
        offset = table - self.phys_base + index * 8
        self.memory[offset:offset + 8] = value.to_bytes(8, "little")

    def map_page(self, va: int, pa: int, writable: bool = True, el0: bool = False) -> None:
        """Install a 4 KiB mapping va -> pa."""
        if va & PAGE_MASK or pa & PAGE_MASK:
            raise ValueError("map_page addresses must be page aligned")
        table = self.root
        for shift in _LEVEL_SHIFTS[:-1]:
            index = (va >> shift) & _INDEX_MASK
            descriptor = self._read_desc(table, index)
            if not descriptor & DESC_VALID:
                new_table = self._alloc_table()
                self._write_desc(table, index, new_table | DESC_VALID | DESC_TABLE)
                table = new_table
            elif descriptor & DESC_TABLE:
                table = descriptor & DESC_ADDR_MASK
            else:
                raise ValueError(f"VA 0x{va:x} already covered by a block mapping")
        index = (va >> PAGE_SHIFT) & _INDEX_MASK
        flags = DESC_VALID | DESC_TABLE
        if not writable:
            flags |= DESC_AP_RO
        if el0:
            flags |= DESC_AP_EL0
        self._write_desc(table, index, pa | flags)

    def map_range(self, va: int, pa: int, size: int, writable: bool = True,
                  el0: bool = False) -> None:
        if size <= 0:
            raise ValueError("map_range size must be positive")
        end = va + size
        while va < end:
            self.map_page(va, pa, writable, el0)
            va += PAGE_SIZE
            pa += PAGE_SIZE

    def identity_map(self, start: int, size: int, writable: bool = True,
                     el0: bool = False) -> None:
        self.map_range(start, start, size, writable, el0)
