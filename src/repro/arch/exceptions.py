"""Exception model: synchronous exceptions, IRQs and ERET.

Follows the ARMv8 shape with a reduced vector table at ``VBAR_EL1``:

========  ===============================
offset    taken for
========  ===============================
0x000     synchronous exception from EL1
0x080     IRQ from EL1
0x100     synchronous exception from EL0
0x180     IRQ from EL0
========  ===============================

Taking an exception saves PSTATE to ``SPSR_EL1`` and the preferred return
address to ``ELR_EL1``, writes a syndrome to ``ESR_EL1`` (exception class in
bits [31:26], immediate in [15:0]), masks IRQs and enters EL1.  ``ERET``
reverses the process.
"""

from __future__ import annotations

import enum

from .isa import SysReg
from .registers import CpuState

VECTOR_SYNC_EL1 = 0x000
VECTOR_IRQ_EL1 = 0x080
VECTOR_SYNC_EL0 = 0x100
VECTOR_IRQ_EL0 = 0x180


class ExceptionClass(enum.IntEnum):
    """ESR_EL1 exception-class values (subset of the ARM encoding)."""

    UNKNOWN = 0x00
    WFI_TRAP = 0x01
    SVC = 0x15
    INSTRUCTION_ABORT = 0x21
    DATA_ABORT = 0x25
    BRK = 0x3C
    IRQ = 0x3F          # not a real ESR class; used internally


class GuestFault(Exception):
    """An architectural fault the execution backend must deliver."""

    def __init__(self, ec: ExceptionClass, iss: int = 0, fault_address: int = 0,
                 message: str = ""):
        self.ec = ec
        self.iss = iss & 0xFFFF
        self.fault_address = fault_address
        super().__init__(message or f"guest fault {ec.name} iss={iss:#x} far={fault_address:#x}")


def make_esr(ec: ExceptionClass, iss: int = 0) -> int:
    return (int(ec) << 26) | (iss & 0xFFFF)


def esr_class(esr: int) -> ExceptionClass:
    return ExceptionClass((esr >> 26) & 0x3F)


def take_sync_exception(state: CpuState, ec: ExceptionClass, iss: int = 0,
                        fault_address: int = 0, return_pc: int = 0) -> None:
    """Route a synchronous exception to EL1.

    ``return_pc`` is the preferred return address (the faulting instruction
    for aborts, the next instruction for SVC/BRK-style traps).
    """
    vbar = state.read_sysreg(SysReg.VBAR_EL1)
    offset = VECTOR_SYNC_EL0 if state.el == 0 else VECTOR_SYNC_EL1
    state.write_sysreg(SysReg.SPSR_EL1, state.pstate_value())
    state.write_sysreg(SysReg.ELR_EL1, return_pc)
    state.write_sysreg(SysReg.ESR_EL1, make_esr(ec, iss))
    if fault_address:
        state.write_sysreg(SysReg.FAR_EL1, fault_address)
    state.el = 1
    state.mask_irqs()
    state.clear_exclusive()
    state.pc = (vbar + offset) & ((1 << 64) - 1)


def take_irq(state: CpuState, return_pc: int) -> None:
    """Route a (physical) IRQ to EL1.  Caller must check PSTATE.I first."""
    vbar = state.read_sysreg(SysReg.VBAR_EL1)
    offset = VECTOR_IRQ_EL0 if state.el == 0 else VECTOR_IRQ_EL1
    state.write_sysreg(SysReg.SPSR_EL1, state.pstate_value())
    state.write_sysreg(SysReg.ELR_EL1, return_pc)
    state.el = 1
    state.mask_irqs()
    state.clear_exclusive()
    state.pc = (vbar + offset) & ((1 << 64) - 1)


def do_eret(state: CpuState) -> None:
    """Return from an exception: restore PSTATE and jump to ELR_EL1."""
    if state.el == 0:
        raise GuestFault(ExceptionClass.UNKNOWN, message="ERET executed at EL0")
    spsr = state.read_sysreg(SysReg.SPSR_EL1)
    elr = state.read_sysreg(SysReg.ELR_EL1)
    state.restore_pstate(spsr)
    state.clear_exclusive()
    state.pc = elr
