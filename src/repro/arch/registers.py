"""Architectural CPU state for A64-lite.

Holds the general-purpose registers, PSTATE (NZCV flags, IRQ mask, current
exception level) and the EL1 system registers.  The state object is shared
between execution backends: the interpreter mutates it directly and the
simulated KVM exposes it through ``get_regs``/``set_regs``, like the real
``KVM_GET_ONE_REG`` interface.
"""

from __future__ import annotations

from typing import Dict

from .isa import NUM_REGS, SysReg

MASK64 = (1 << 64) - 1

#: PSTATE.I — IRQ mask bit position inside the DAIF value.
DAIF_IRQ_BIT = 0x2


class CpuState:
    """Registers + PSTATE + system registers of one core."""

    __slots__ = (
        "regs", "pc", "flag_n", "flag_z", "flag_c", "flag_v",
        "el", "daif", "sysregs", "exclusive_addr", "exclusive_valid",
        "halted", "core_id", "instret",
    )

    def __init__(self, core_id: int = 0):
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.flag_n = False
        self.flag_z = False
        self.flag_c = False
        self.flag_v = False
        self.el = 1                       # cores reset into EL1
        self.daif = DAIF_IRQ_BIT          # IRQs masked at reset
        self.sysregs: Dict[int, int] = {
            int(SysReg.MPIDR_EL1): core_id,
            int(SysReg.MIDR_EL1): 0x41A64113,   # implementer 'A', custom part
            int(SysReg.CNTFRQ_EL0): 62_500_000,
        }
        self.exclusive_addr = -1
        self.exclusive_valid = False
        self.halted = False
        self.core_id = core_id
        self.instret = 0                  # retired-instruction counter

    # -- GPRs -----------------------------------------------------------------
    def read_reg(self, index: int) -> int:
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        self.regs[index] = value & MASK64

    @property
    def sp(self) -> int:
        return self.regs[31]

    @sp.setter
    def sp(self, value: int) -> None:
        self.regs[31] = value & MASK64

    @property
    def lr(self) -> int:
        return self.regs[30]

    # -- PSTATE ----------------------------------------------------------------
    @property
    def irqs_masked(self) -> bool:
        return bool(self.daif & DAIF_IRQ_BIT)

    def mask_irqs(self) -> None:
        self.daif |= DAIF_IRQ_BIT

    def unmask_irqs(self) -> None:
        self.daif &= ~DAIF_IRQ_BIT

    def pstate_value(self) -> int:
        """Pack PSTATE into a SPSR-style value."""
        value = self.el & 0x3
        value |= (self.daif & 0xF) << 6
        value |= (int(self.flag_v) << 28) | (int(self.flag_c) << 29)
        value |= (int(self.flag_z) << 30) | (int(self.flag_n) << 31)
        return value

    def restore_pstate(self, value: int) -> None:
        self.el = value & 0x3
        self.daif = (value >> 6) & 0xF
        self.flag_v = bool(value & (1 << 28))
        self.flag_c = bool(value & (1 << 29))
        self.flag_z = bool(value & (1 << 30))
        self.flag_n = bool(value & (1 << 31))

    def set_nzcv(self, n: bool, z: bool, c: bool, v: bool) -> None:
        self.flag_n, self.flag_z, self.flag_c, self.flag_v = n, z, c, v

    # -- system registers -----------------------------------------------------------
    def read_sysreg(self, reg: int) -> int:
        if reg == SysReg.CURRENT_EL:
            return self.el << 2       # mirrors CurrentEL encoding
        if reg == SysReg.DAIF:
            return self.daif << 6
        return self.sysregs.get(int(reg), 0)

    def write_sysreg(self, reg: int, value: int) -> None:
        if reg == SysReg.CURRENT_EL:
            raise PermissionError("CurrentEL is read-only")
        if reg == SysReg.DAIF:
            self.daif = (value >> 6) & 0xF
            return
        self.sysregs[int(reg)] = value & MASK64

    # -- exclusive monitor ---------------------------------------------------------
    def set_exclusive(self, address: int) -> None:
        self.exclusive_addr = address
        self.exclusive_valid = True

    def clear_exclusive(self) -> None:
        self.exclusive_valid = False
        self.exclusive_addr = -1

    def check_exclusive(self, address: int) -> bool:
        return self.exclusive_valid and self.exclusive_addr == address

    # -- snapshots --------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Architectural state as a plain dict (KVM_GET_REGS analogue)."""
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "pstate": self.pstate_value(),
            "sysregs": dict(self.sysregs),
            "instret": self.instret,
        }

    def restore(self, snap: dict) -> None:
        self.regs = list(snap["regs"])
        self.pc = snap["pc"]
        self.restore_pstate(snap["pstate"])
        self.sysregs = dict(snap["sysregs"])
        self.instret = snap.get("instret", self.instret)

    def __repr__(self) -> str:
        return (
            f"CpuState(core={self.core_id}, pc=0x{self.pc:x}, el={self.el}, "
            f"instret={self.instret})"
        )
