"""TLM initiator/target sockets with blocking transport, debug and DMI.

The blocking-transport convention mirrors TLM-2.0's loosely-timed style:

``b_transport(payload, delay)`` is called with an *annotated* delay (local
time offset of the initiator); the target may increase the delay to model
latency.  Because our kernel processes are generators, the transport call is
a plain Python call — the initiator process adds the returned delay to its
quantum keeper and yields when the quantum expires, exactly as a
loosely-timed C++ initiator would.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from ..systemc.time import SimTime
from .dmi import DmiRegion
from .payload import Command, GenericPayload, ResponseStatus, TlmError


class TransportTarget(Protocol):
    """Interface implemented by anything bindable to an initiator socket."""

    def b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime: ...

    def transport_dbg(self, payload: GenericPayload) -> int: ...

    def get_direct_mem_ptr(self, payload: GenericPayload) -> Optional[DmiRegion]: ...


class TargetSocket:
    """The target-side endpoint; dispatches to the owning model's callbacks."""

    def __init__(
        self,
        name: str,
        transport_fn: Callable[[GenericPayload, SimTime], SimTime],
        debug_fn: Optional[Callable[[GenericPayload], int]] = None,
        dmi_fn: Optional[Callable[[GenericPayload], Optional[DmiRegion]]] = None,
        invalidate_hook: Optional[Callable[[Callable[[int, int], None]], None]] = None,
    ):
        self.name = name
        self._transport_fn = transport_fn
        self._debug_fn = debug_fn
        self._dmi_fn = dmi_fn
        self._invalidate_hook = invalidate_hook
        self._bound_initiators = []

    def b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        return self._transport_fn(payload, delay)

    def transport_dbg(self, payload: GenericPayload) -> int:
        if self._debug_fn is not None:
            return self._debug_fn(payload)
        # Default: reuse b_transport without side effects on timing.
        payload.is_debug = True
        try:
            self._transport_fn(payload, SimTime.zero())
        finally:
            payload.is_debug = False
        return len(payload.data) if payload.response_status.is_ok else 0

    def get_direct_mem_ptr(self, payload: GenericPayload) -> Optional[DmiRegion]:
        if self._dmi_fn is None:
            payload.dmi_allowed = False
            return None
        return self._dmi_fn(payload)

    def register_invalidation(self, callback: Callable[[int, int], None]) -> None:
        if self._invalidate_hook is not None:
            self._invalidate_hook(callback)


class InitiatorSocket:
    """The initiator-side endpoint: what CPU models issue transactions on."""

    def __init__(self, name: str, initiator_id: int = 0):
        self.name = name
        self.initiator_id = initiator_id
        self._target: Optional[TransportTarget] = None

    def bind(self, target: TransportTarget) -> None:
        if self._target is not None:
            raise RuntimeError(f"initiator socket {self.name!r} already bound")
        self._target = target

    @property
    def bound(self) -> bool:
        return self._target is not None

    def _require_target(self) -> TransportTarget:
        if self._target is None:
            raise RuntimeError(f"initiator socket {self.name!r} is not bound")
        return self._target

    # -- transport ----------------------------------------------------------
    def b_transport(self, payload: GenericPayload, delay: SimTime) -> SimTime:
        payload.initiator_id = self.initiator_id
        return self._require_target().b_transport(payload, delay)

    def transport_dbg(self, payload: GenericPayload) -> int:
        payload.initiator_id = self.initiator_id
        return self._require_target().transport_dbg(payload)

    def get_direct_mem_ptr(self, payload: GenericPayload) -> Optional[DmiRegion]:
        payload.initiator_id = self.initiator_id
        return self._require_target().get_direct_mem_ptr(payload)

    def register_invalidation(self, callback: Callable[[int, int], None]) -> None:
        target = self._require_target()
        register = getattr(target, "register_invalidation", None)
        if register is not None:
            register(callback)

    # -- convenience accessors -------------------------------------------------
    def read(self, address: int, length: int, delay: Optional[SimTime] = None) -> bytes:
        """Blocking read that raises :class:`TlmError` on failure."""
        payload = GenericPayload.read(address, length, self.initiator_id)
        self.b_transport(payload, delay if delay is not None else SimTime.zero())
        if not payload.response_status.is_ok:
            raise TlmError(payload)
        return bytes(payload.data)

    def write(self, address: int, data: bytes, delay: Optional[SimTime] = None) -> None:
        payload = GenericPayload.write(address, data, self.initiator_id)
        self.b_transport(payload, delay if delay is not None else SimTime.zero())
        if not payload.response_status.is_ok:
            raise TlmError(payload)

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read(address, 4), "little")

    def write_u32(self, address: int, value: int) -> None:
        self.write(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self.read(address, 8), "little")

    def write_u64(self, address: int, value: int) -> None:
        self.write(address, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))
