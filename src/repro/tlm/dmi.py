"""TLM Direct Memory Interface (DMI).

DMI lets an initiator bypass transaction-level transport and access a target's
backing storage directly.  The paper relies on this twice:

* the ISS uses DMI pointers for fast load/store handling, and
* the KVM CPU model queries DMI for the RAM model and maps the returned
  region into the guest as a KVM memory slot, so guest loads/stores run
  natively without any simulator involvement.

A :class:`DmiRegion` wraps a ``memoryview`` over the target's storage plus the
covered address range and granted access rights.  Targets that re-layout
memory call :meth:`DmiManager.invalidate`, which initiators observe through
registered callbacks (``invalidate_direct_mem_ptr``).
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional


class DmiAccess(enum.Flag):
    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    READ_WRITE = READ | WRITE


class DmiRegion:
    """A direct-access window into a target's backing storage."""

    __slots__ = ("start", "end", "memory", "access", "read_latency_ps", "write_latency_ps")

    def __init__(
        self,
        start: int,
        end: int,
        memory: memoryview,
        access: DmiAccess = DmiAccess.READ_WRITE,
        read_latency_ps: int = 0,
        write_latency_ps: int = 0,
    ):
        if end < start:
            raise ValueError(f"DMI region end 0x{end:x} before start 0x{start:x}")
        expected = end - start + 1
        if len(memory) != expected:
            raise ValueError(f"DMI backing size {len(memory)} != range size {expected}")
        self.start = start
        self.end = end
        self.memory = memory
        self.access = access
        self.read_latency_ps = read_latency_ps
        self.write_latency_ps = write_latency_ps

    @property
    def size(self) -> int:
        return self.end - self.start + 1

    def contains(self, address: int, length: int = 1) -> bool:
        return self.start <= address and address + length - 1 <= self.end

    def allows_read(self) -> bool:
        return bool(self.access & DmiAccess.READ)

    def allows_write(self) -> bool:
        return bool(self.access & DmiAccess.WRITE)

    def view(self, address: int, length: int) -> memoryview:
        if not self.contains(address, length):
            raise ValueError(
                f"access 0x{address:x}+{length} outside DMI region "
                f"[0x{self.start:x}, 0x{self.end:x}]"
            )
        offset = address - self.start
        return self.memory[offset:offset + length]

    def __repr__(self) -> str:
        return f"DmiRegion([0x{self.start:x}, 0x{self.end:x}], {self.access})"


class DmiManager:
    """Tracks granted DMI regions for one initiator and their invalidation."""

    def __init__(self):
        self._regions: List[DmiRegion] = []
        self._invalidation_callbacks: List[Callable[[int, int], None]] = []

    def add(self, region: DmiRegion) -> DmiRegion:
        self._regions.append(region)
        return region

    def lookup(self, address: int, length: int = 1, write: bool = False) -> Optional[DmiRegion]:
        for region in self._regions:
            if region.contains(address, length):
                if write and not region.allows_write():
                    continue
                if not write and not region.allows_read():
                    continue
                return region
        return None

    def on_invalidate(self, callback: Callable[[int, int], None]) -> None:
        self._invalidation_callbacks.append(callback)

    def invalidate(self, start: int = 0, end: int = 2**64 - 1) -> int:
        """Drop regions overlapping [start, end]; returns how many were dropped."""
        kept, dropped = [], 0
        for region in self._regions:
            if region.end < start or region.start > end:
                kept.append(region)
            else:
                dropped += 1
        self._regions = kept
        if dropped:
            for callback in self._invalidation_callbacks:
                callback(start, end)
        return dropped

    def clear(self) -> None:
        self.invalidate()

    def __len__(self) -> int:
        return len(self._regions)
