"""TLM Direct Memory Interface (DMI).

DMI lets an initiator bypass transaction-level transport and access a target's
backing storage directly.  The paper relies on this twice:

* the ISS uses DMI pointers for fast load/store handling, and
* the KVM CPU model queries DMI for the RAM model and maps the returned
  region into the guest as a KVM memory slot, so guest loads/stores run
  natively without any simulator involvement.

A :class:`DmiRegion` wraps a ``memoryview`` over the target's storage plus the
covered address range and granted access rights.  Targets that re-layout
memory call :meth:`DmiManager.invalidate`, which initiators observe through
registered callbacks (``invalidate_direct_mem_ptr``).
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from typing import Callable, List, Optional


class DmiAccess(enum.Flag):
    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    READ_WRITE = READ | WRITE


class DmiRegion:
    """A direct-access window into a target's backing storage."""

    __slots__ = ("start", "end", "memory", "access", "read_latency_ps", "write_latency_ps")

    def __init__(
        self,
        start: int,
        end: int,
        memory: memoryview,
        access: DmiAccess = DmiAccess.READ_WRITE,
        read_latency_ps: int = 0,
        write_latency_ps: int = 0,
    ):
        if end < start:
            raise ValueError(f"DMI region end 0x{end:x} before start 0x{start:x}")
        expected = end - start + 1
        if len(memory) != expected:
            raise ValueError(f"DMI backing size {len(memory)} != range size {expected}")
        self.start = start
        self.end = end
        self.memory = memory
        self.access = access
        self.read_latency_ps = read_latency_ps
        self.write_latency_ps = write_latency_ps

    @property
    def size(self) -> int:
        return self.end - self.start + 1

    def contains(self, address: int, length: int = 1) -> bool:
        return self.start <= address and address + length - 1 <= self.end

    def allows_read(self) -> bool:
        return bool(self.access & DmiAccess.READ)

    def allows_write(self) -> bool:
        return bool(self.access & DmiAccess.WRITE)

    def view(self, address: int, length: int) -> memoryview:
        if not self.contains(address, length):
            raise ValueError(
                f"access 0x{address:x}+{length} outside DMI region "
                f"[0x{self.start:x}, 0x{self.end:x}]"
            )
        offset = address - self.start
        return self.memory[offset:offset + length]

    def __repr__(self) -> str:
        return f"DmiRegion([0x{self.start:x}, 0x{self.end:x}], {self.access})"


class DmiManager:
    """Tracks granted DMI regions for one initiator and their invalidation.

    Regions are kept interval-sorted by start address so :meth:`lookup` can
    bisect instead of scanning, with a small MRU "front cache" checked first
    — repeated accesses to the same region (the common case on the memory
    hot path) resolve in one containment test.  A :attr:`generation`
    counter bumps on every mutation so callers caching lookup results
    (e.g. :class:`repro.fabric.MemoryPort`) can validate cheaply.
    """

    #: how many recently-hit regions the front cache remembers
    FRONT_CACHE_SIZE = 4

    #: one manager serves a core's lane on every access, but invalidations
    #: arrive from *other* lanes' stores and from barrier-side device
    #: remaps — the region list, MRU front cache, and generation counter
    #: are cross-lane state under the parallel quantum kernel
    CROSS_LANE_SHARED = True

    def __init__(self):
        self._regions: List[DmiRegion] = []      # sorted by (start, end)
        self._starts: List[int] = []             # parallel bisect key list
        self._front: List[DmiRegion] = []        # MRU-ordered recent hits
        self._invalidation_callbacks: List[Callable[[int, int], None]] = []
        #: bumped on add()/invalidate(); external caches key on this
        self.generation = 0
        # Statistics (diagnostics only).
        self.num_lookups = 0
        self.num_front_hits = 0
        self.num_misses = 0

    @staticmethod
    def _usable(region: DmiRegion, address: int, length: int, write: bool) -> bool:
        if not region.contains(address, length):
            return False
        return region.allows_write() if write else region.allows_read()

    def add(self, region: DmiRegion) -> DmiRegion:
        index = bisect_right(self._starts, region.start)
        self._regions.insert(index, region)
        self._starts.insert(index, region.start)
        self.generation += 1
        return region

    def lookup(self, address: int, length: int = 1, write: bool = False) -> Optional[DmiRegion]:
        self.num_lookups += 1
        front = self._front
        for index, region in enumerate(front):
            if self._usable(region, address, length, write):
                self.num_front_hits += 1
                if index:
                    front.insert(0, front.pop(index))
                return region
        # Bisect for the rightmost region starting at or before `address`.
        # Regions with distinct access rights may overlap, so a failed
        # candidate falls back to walking left through earlier starters.
        index = bisect_right(self._starts, address) - 1
        while index >= 0:
            region = self._regions[index]
            if self._usable(region, address, length, write):
                front.insert(0, region)
                del front[self.FRONT_CACHE_SIZE:]
                return region
            index -= 1
        self.num_misses += 1
        return None

    def on_invalidate(self, callback: Callable[[int, int], None]) -> None:
        self._invalidation_callbacks.append(callback)

    def invalidate(self, start: int = 0, end: int = 2**64 - 1) -> int:
        """Drop regions overlapping [start, end]; returns how many were dropped."""
        kept, dropped = [], 0
        for region in self._regions:
            if region.end < start or region.start > end:
                kept.append(region)
            else:
                dropped += 1
        self._regions = kept
        self._starts = [r.start for r in kept]
        self._front = [r for r in self._front if r in kept]
        self.generation += 1
        if dropped:
            for callback in self._invalidation_callbacks:
                callback(start, end)
        return dropped

    def clear(self) -> None:
        self.invalidate()

    def __len__(self) -> int:
        return len(self._regions)
