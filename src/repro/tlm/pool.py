"""Reusable-payload free list (VCML's payload pooling, in Python).

Every MMIO round trip, ISS load/store, debugger peek and loader write used
to allocate a fresh :class:`~repro.tlm.payload.GenericPayload` plus its
backing ``bytearray``, pay the enum/default initialisation, and throw both
away one call later.  VCML solves this in C++ with a per-initiator payload
pool; this is the same idea: :meth:`acquire_read`/:meth:`acquire_write`
hand out a fully *reset* payload (command, address, data, byte enables,
DMI hint, response status — everything a target could have touched),
:meth:`release` returns it to the free list.

Resetting on acquire rather than on release keeps the pool safe against
payloads that escape (e.g. a payload attached to a raised
:class:`~repro.tlm.payload.TlmError` is simply never released and the pool
forgets about it).

The pool is a mechanism of :mod:`repro.fabric`; initiator code should not
build raw payloads itself (lint rule RPR007 flags that as a pool bypass).
"""

from __future__ import annotations

from typing import List, Optional

from .payload import Command, GenericPayload, ResponseStatus


class PayloadPool:
    """A bounded free list of reusable :class:`GenericPayload` objects."""

    def __init__(self, max_free: int = 64):
        if max_free < 0:
            raise ValueError(f"pool max_free must be >= 0, got {max_free}")
        self.max_free = max_free
        self._free: List[GenericPayload] = []
        # Statistics (diagnostics only; never consulted by transport logic).
        self.num_acquires = 0
        self.num_reuses = 0
        self.num_releases = 0
        self.num_discards = 0

    # -- acquire / release ---------------------------------------------------
    def _acquire(self) -> GenericPayload:
        self.num_acquires += 1
        if self._free:
            self.num_reuses += 1
            return self._free.pop()
        return GenericPayload()

    def acquire_read(self, address: int, length: int,
                     initiator_id: int = 0) -> GenericPayload:
        """A READ payload with a zeroed ``length``-byte data buffer."""
        payload = self._acquire()
        payload.command = Command.READ
        payload.address = address
        payload.data[:] = bytes(length)
        payload.byte_enable = None
        payload.streaming_width = length
        payload.dmi_allowed = False
        payload.response_status = ResponseStatus.INCOMPLETE
        payload.initiator_id = initiator_id
        payload.is_debug = False
        return payload

    def acquire_write(self, address: int, data: bytes,
                      initiator_id: int = 0) -> GenericPayload:
        """A WRITE payload carrying a copy of ``data``."""
        payload = self._acquire()
        payload.command = Command.WRITE
        payload.address = address
        payload.data[:] = data
        payload.byte_enable = None
        payload.streaming_width = len(payload.data)
        payload.dmi_allowed = False
        payload.response_status = ResponseStatus.INCOMPLETE
        payload.initiator_id = initiator_id
        payload.is_debug = False
        return payload

    def release(self, payload: Optional[GenericPayload]) -> None:
        """Return ``payload`` to the free list (drop it once the list is full)."""
        if payload is None:
            return
        self.num_releases += 1
        if len(self._free) < self.max_free:
            self._free.append(payload)
        else:
            self.num_discards += 1

    # -- introspection ------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    def stats(self) -> dict:
        return {
            "acquires": self.num_acquires,
            "reuses": self.num_reuses,
            "releases": self.num_releases,
            "discards": self.num_discards,
            "free": len(self._free),
        }

    def __repr__(self) -> str:
        return (f"PayloadPool(free={len(self._free)}/{self.max_free}, "
                f"reuse={self.num_reuses}/{self.num_acquires})")
