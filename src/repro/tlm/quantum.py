"""Temporal decoupling: global quantum and quantum keeper.

Port of ``tlm_utils::tlm_quantumkeeper``.  A loosely-timed initiator keeps a
*local time offset* ahead of the SystemC time; it only yields back to the
kernel (synchronizes) when the offset exceeds the global quantum.  The
quantum is the paper's central performance knob: it determines the KVM run
budget per ``simulate()`` call and the synchronization frequency between the
simulated cores (Figs. 5 and 6).
"""

from __future__ import annotations

from typing import Optional

from ..systemc.kernel import Kernel, current_kernel
from ..systemc.time import SimTime


class GlobalQuantum:
    """Process-wide quantum value (``tlm::tlm_global_quantum``)."""

    def __init__(self, quantum: Optional[SimTime] = None):
        self._quantum = quantum if quantum is not None else SimTime.us(1)

    @property
    def quantum(self) -> SimTime:
        return self._quantum

    @quantum.setter
    def quantum(self, value: SimTime) -> None:
        if not isinstance(value, SimTime):
            raise TypeError("quantum must be a SimTime")
        if value.is_zero():
            raise ValueError("quantum must be non-zero")
        self._quantum = value


class QuantumKeeper:
    """Tracks one initiator's local time offset against the global quantum."""

    def __init__(self, global_quantum: GlobalQuantum, kernel: Optional[Kernel] = None):
        self.global_quantum = global_quantum
        self._kernel = kernel or current_kernel()
        self._local_offset = SimTime.zero()

    # -- queries -----------------------------------------------------------
    @property
    def local_time_offset(self) -> SimTime:
        """How far this initiator has run ahead of SystemC time."""
        return self._local_offset

    def current_time(self) -> SimTime:
        """Effective local time: kernel time plus the local offset."""
        return self._kernel.now + self._local_offset

    def remaining(self) -> SimTime:
        """Budget left before a sync is needed."""
        quantum = self.global_quantum.quantum
        if self._local_offset >= quantum:
            return SimTime.zero()
        return quantum - self._local_offset

    def need_sync(self) -> bool:
        return self._local_offset >= self.global_quantum.quantum

    # -- mutation -------------------------------------------------------------
    def inc(self, delta: SimTime) -> None:
        self._local_offset = self._local_offset + delta

    def set_offset(self, offset: SimTime) -> None:
        self._local_offset = offset

    def reset(self) -> None:
        self._local_offset = SimTime.zero()

    def sync_wait(self) -> SimTime:
        """Return the wait duration that realizes the local offset.

        Usage inside an SC_THREAD::

            yield keeper.sync_wait()

        The keeper resets its offset; after the wait the process is
        synchronized with the global simulation time.
        """
        offset = self._local_offset
        self._local_offset = SimTime.zero()
        return offset
