"""TLM-2.0-like transaction-level modeling layer.

Generic payload, blocking transport sockets, DMI, and temporal decoupling
(global quantum + quantum keeper) — the interfaces the paper's KVM CPU model
and the baseline ISS model both program against.
"""

from .dmi import DmiAccess, DmiManager, DmiRegion
from .payload import Command, GenericPayload, ResponseStatus, TlmError
from .pool import PayloadPool
from .quantum import GlobalQuantum, QuantumKeeper
from .sockets import InitiatorSocket, TargetSocket

__all__ = [
    "Command",
    "DmiAccess",
    "DmiManager",
    "DmiRegion",
    "GenericPayload",
    "GlobalQuantum",
    "InitiatorSocket",
    "PayloadPool",
    "QuantumKeeper",
    "ResponseStatus",
    "TargetSocket",
    "TlmError",
]
