"""TLM-2.0 generic payload.

Faithful (Pythonic) port of ``tlm::tlm_generic_payload`` — command, address,
data, byte enables, streaming width, DMI hint, and response status.  Models
communicate exclusively through this structure plus the blocking-transport
interface, which is what lets the KVM CPU model act as a drop-in replacement
for an ISS: both emit identical transactions.
"""

from __future__ import annotations

import enum
from typing import Optional


class Command(enum.Enum):
    IGNORE = 0
    READ = 1
    WRITE = 2


class ResponseStatus(enum.Enum):
    INCOMPLETE = "incomplete"
    OK = "ok"
    GENERIC_ERROR = "generic_error"
    ADDRESS_ERROR = "address_error"
    COMMAND_ERROR = "command_error"
    BURST_ERROR = "burst_error"
    BYTE_ENABLE_ERROR = "byte_enable_error"

    @property
    def is_ok(self) -> bool:
        return self is ResponseStatus.OK

    @property
    def is_error(self) -> bool:
        return self not in (ResponseStatus.OK, ResponseStatus.INCOMPLETE)


class GenericPayload:
    """A memory-mapped bus transaction."""

    __slots__ = (
        "command",
        "address",
        "data",
        "byte_enable",
        "streaming_width",
        "dmi_allowed",
        "response_status",
        "initiator_id",
        "is_debug",
    )

    def __init__(
        self,
        command: Command = Command.IGNORE,
        address: int = 0,
        data: Optional[bytearray] = None,
        byte_enable: Optional[bytes] = None,
        streaming_width: Optional[int] = None,
        initiator_id: int = 0,
    ):
        self.command = command
        self.address = address
        self.data = data if data is not None else bytearray()
        self.byte_enable = byte_enable
        self.streaming_width = streaming_width if streaming_width is not None else len(self.data)
        self.dmi_allowed = False
        self.response_status = ResponseStatus.INCOMPLETE
        self.initiator_id = initiator_id
        self.is_debug = False

    # -- constructors ----------------------------------------------------
    @classmethod
    def read(cls, address: int, length: int, initiator_id: int = 0) -> "GenericPayload":
        return cls(Command.READ, address, bytearray(length), initiator_id=initiator_id)

    @classmethod
    def write(cls, address: int, data: bytes, initiator_id: int = 0) -> "GenericPayload":
        return cls(Command.WRITE, address, bytearray(data), initiator_id=initiator_id)

    # -- accessors ---------------------------------------------------------
    @property
    def length(self) -> int:
        return len(self.data)

    @property
    def is_read(self) -> bool:
        return self.command is Command.READ

    @property
    def is_write(self) -> bool:
        return self.command is Command.WRITE

    def set_ok(self) -> None:
        self.response_status = ResponseStatus.OK

    def set_error(self, status: ResponseStatus = ResponseStatus.GENERIC_ERROR) -> None:
        self.response_status = status

    def data_as_int(self) -> int:
        """Interpret the data buffer as a little-endian unsigned integer."""
        return int.from_bytes(self.data, "little")

    def set_data_int(self, value: int, length: Optional[int] = None) -> None:
        size = length if length is not None else len(self.data)
        self.data[:] = int(value).to_bytes(size, "little")
        self.streaming_width = size

    def enabled_bytes(self):
        """Yield indices of data bytes enabled by the byte-enable mask."""
        if self.byte_enable is None:
            yield from range(len(self.data))
            return
        mask = self.byte_enable
        for index in range(len(self.data)):
            if mask[index % len(mask)] != 0:
                yield index

    def __repr__(self) -> str:
        return (
            f"GenericPayload({self.command.name} @0x{self.address:x} "
            f"len={len(self.data)} status={self.response_status.value})"
        )


class TlmError(Exception):
    """Raised by initiators that demand successful transport."""

    def __init__(self, payload: GenericPayload):
        self.payload = payload
        super().__init__(
            f"TLM {payload.command.name} at 0x{payload.address:x} failed: "
            f"{payload.response_status.value}"
        )
