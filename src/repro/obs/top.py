"""Plain-text live view of a running VP's observability stream.

Pure rendering + stream-following helpers; the actual printing lives in
``python -m repro.obs`` (module mains are the sanctioned console edge).
``render_top`` turns one ``repro.obs.snapshot/1`` object into a small
fixed-width frame; :func:`follow` tails a JSONL stream file as the sink
writes it, and :func:`serve_socket` accepts one Unix-socket connection
from a :class:`repro.obs.stream.SocketSink` and yields its snapshots.

The poll pacing blocks real host time, so it routes through
``repro.host.wallclock.pause`` — the sanctioned real-clock boundary —
rather than ``time.sleep``: this is a *viewer*, the simulated platform
never waits on the console.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Iterator, Optional

from ..host.wallclock import pause

BAR_WIDTH = 24


def _bar(fraction: float, width: int = BAR_WIDTH) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_top(snapshot: dict) -> str:
    """One frame of the live view for a single snapshot."""
    if snapshot.get("final"):
        summary = snapshot.get("summary", {})
        lines = [f"-- run complete: {snapshot.get('platform', '?')} --",
                 f"windows {summary.get('windows', 0)}  "
                 f"wall {summary.get('wall_time_ns', 0.0) / 1e6:.3f} ms  "
                 f"MIPS {summary.get('mips', 0.0):.0f}"]
        projected = summary.get("projected", {})
        if projected:
            lines.append(
                f"projected parallel speedup "
                f"{projected.get('parallel_speedup', 1.0):.2f}x  "
                f"efficiency {projected.get('parallel_efficiency', 1.0):.2f}")
        for name, lane in sorted(summary.get("lanes", {}).items()):
            utilization = lane.get("utilization", 0.0)
            lines.append(f"{name:8s} [{_bar(utilization)}] "
                         f"{utilization * 100:5.1f}%")
        return "\n".join(lines) + "\n"
    lines = [f"{snapshot.get('platform', '?')}  "
             f"window {snapshot.get('window', '?')}  "
             f"sim {snapshot.get('sim_time_ps', 0) / 1e6:.1f} us  "
             f"wall {snapshot.get('wall_ns', 0.0) / 1e6:.3f} ms  "
             f"MIPS {snapshot.get('mips', 0.0):.0f}"]
    for name, lane in sorted(snapshot.get("lanes", {}).items()):
        utilization = lane.get("utilization", 0.0)
        phases = lane.get("phases", {})
        top_phase = max(phases, key=phases.get) if phases else "-"
        lines.append(f"{name:8s} [{_bar(utilization)}] "
                     f"{utilization * 100:5.1f}%  {top_phase}")
    return "\n".join(lines) + "\n"


def iter_jsonl(path: str) -> Iterator[dict]:
    """Parse every complete snapshot line currently in a JSONL file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                continue   # partial trailing line mid-write


def follow(path: str, poll_seconds: float = 0.2,
           max_frames: Optional[int] = None,
           stop_on_final: bool = True) -> Iterator[dict]:
    """Tail a JSONL stream file, yielding snapshots as they appear.

    Waits for the file to exist, then polls for appended lines.  Stops
    after ``max_frames`` snapshots, or at the terminal summary snapshot
    when ``stop_on_final`` is set (the writer is done at that point).
    """
    while not os.path.exists(path):
        pause(poll_seconds)
    frames = 0
    with open(path, "r", encoding="utf-8") as handle:
        pending = ""
        while True:
            chunk = handle.readline()
            if not chunk:
                pause(poll_seconds)
                continue
            pending += chunk
            if not pending.endswith("\n"):
                continue   # partial line: writer mid-append
            line, pending = pending.strip(), ""
            if not line:
                continue
            try:
                snapshot = json.loads(line)
            except ValueError:
                continue
            yield snapshot
            frames += 1
            if max_frames is not None and frames >= max_frames:
                return
            if stop_on_final and snapshot.get("final"):
                return


def serve_socket(path: str, max_frames: Optional[int] = None,
                 stop_on_final: bool = True,
                 timeout_seconds: Optional[float] = None) -> Iterator[dict]:
    """Listen on a Unix socket, accept one sink connection, yield snapshots.

    Start the viewer first, then the run with a
    :class:`~repro.obs.stream.SocketSink` pointing at the same path.
    """
    if os.path.exists(path):
        os.unlink(path)
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        server.bind(path)
        server.listen(1)
        if timeout_seconds is not None:
            server.settimeout(timeout_seconds)
        connection, _ = server.accept()
        if timeout_seconds is not None:
            connection.settimeout(timeout_seconds)
        frames = 0
        buffer = b""
        with connection:
            while True:
                chunk = connection.recv(65536)
                if not chunk:
                    return
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    try:
                        snapshot = json.loads(line.decode("utf-8"))
                    except ValueError:
                        continue
                    yield snapshot
                    frames += 1
                    if max_frames is not None and frames >= max_frames:
                        return
                    if stop_on_final and snapshot.get("final"):
                        return
    finally:
        server.close()
        if os.path.exists(path):
            os.unlink(path)
