"""Console entry points for the observability layer.

``python -m repro.obs top`` — live (or replay) view of a snapshot stream::

    python -m repro.obs top run.obs.jsonl            # replay a finished run
    python -m repro.obs top run.obs.jsonl --follow   # tail a running one
    python -m repro.obs top --socket /tmp/obs.sock   # listen for a SocketSink

``python -m repro.obs trend`` — bench history report and regression gate::

    python -m repro.obs trend BENCH_obs.json
    python -m repro.obs trend BENCH_obs.json --check --tolerance 0.2

``python -m repro.obs report`` — pretty-print an attribution report file
written by ``python -m repro.bench --obs-dir``.
"""

from __future__ import annotations

import argparse
import json
import sys

from .attribution import PHASES
from .top import follow, iter_jsonl, render_top, serve_socket
from .trend import DEFAULT_TOLERANCE, check_history, load_history, trend_report


def _cmd_top(args) -> int:
    if args.socket:
        frames = serve_socket(args.socket, max_frames=args.frames,
                              timeout_seconds=args.timeout)
    elif args.follow:
        frames = follow(args.stream, max_frames=args.frames)
    else:
        frames = iter_jsonl(args.stream)
    shown = 0
    for snapshot in frames:
        print(render_top(snapshot))
        shown += 1
        if args.frames is not None and not args.follow and not args.socket \
                and shown >= args.frames:
            break
    if not shown:
        print("(no snapshots)", file=sys.stderr)
        return 1
    return 0


def _cmd_trend(args) -> int:
    history = load_history(args.history)
    print(trend_report(history, last=args.last, tolerance=args.tolerance),
          end="")
    if args.check:
        failures = check_history(history, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
    return 0


def _cmd_report(args) -> int:
    from .attribution import render_summary, AttributionSummary
    with open(args.report, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    summaries = data.get("summaries", [])
    if not summaries:
        print("(no summaries in report)", file=sys.stderr)
        return 1
    for summary in summaries:
        print(f"--- {summary.get('platform', '?')} ---")
        lanes = summary.get("lanes", {})
        print(f"windows {summary.get('windows', 0)}  "
              f"wall {summary.get('wall_time_ns', 0.0) / 1e6:.3f} ms  "
              f"MIPS {summary.get('mips', 0.0):.0f}  "
              f"consistent {summary.get('consistent')}")
        for name, lane in sorted(lanes.items()):
            phases = lane.get("phases", {})
            cells = "  ".join(f"{p}={phases.get(p, 0.0) / 1e6:.3f}ms"
                              for p in PHASES if phases.get(p, 0.0) > 0.0)
            print(f"  {name:8s} util {lane.get('utilization', 0.0) * 100:5.1f}%"
                  f"  {cells}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="live view, trend report, and attribution pretty-printer")
    commands = parser.add_subparsers(dest="command", required=True)

    top = commands.add_parser("top", help="render a snapshot stream")
    top.add_argument("stream", nargs="?", default=None,
                     help="JSONL stream file (from a JsonlSink / --obs-dir)")
    top.add_argument("--socket", default=None,
                     help="listen on this Unix socket for a SocketSink")
    top.add_argument("--follow", action="store_true",
                     help="tail the stream file as it is written")
    top.add_argument("--frames", type=int, default=None,
                     help="stop after this many snapshots")
    top.add_argument("--timeout", type=float, default=None,
                     help="socket accept/read timeout in seconds")
    top.set_defaults(handler=_cmd_top)

    trend = commands.add_parser("trend", help="bench history trend report")
    trend.add_argument("history", help="BENCH_obs.json history file")
    trend.add_argument("--last", type=int, default=10,
                       help="number of entries to show (default 10)")
    trend.add_argument("--check", action="store_true",
                       help="exit non-zero on a ratio-gate regression")
    trend.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                       help="allowed fractional MIPS regression "
                            f"(default {DEFAULT_TOLERANCE})")
    trend.set_defaults(handler=_cmd_trend)

    report = commands.add_parser("report",
                                 help="pretty-print an attribution report")
    report.add_argument("report", help="<experiment>.obs.json file")
    report.set_defaults(handler=_cmd_report)

    args = parser.parse_args(argv)
    if args.command == "top" and not args.stream and not args.socket:
        parser.error("top needs a stream file or --socket")
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
