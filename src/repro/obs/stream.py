"""Bounded, drop-accounted streaming of observability snapshots.

The attribution engine (:mod:`repro.obs.engine`) produces one snapshot per
finalized quantum window; this module fans those snapshots out to pluggable
sinks without ever being allowed to stall or destabilize the simulation:

* every sink is **best-effort** — a failing write drops the snapshot and
  increments that sink's drop counter instead of raising into the kernel;
* the streamer is **bounded** — a stride (``every``) thins high-frequency
  window streams and ``max_snapshots`` caps the total volume, with
  everything not forwarded accounted in ``dropped_stride`` /
  ``dropped_cap`` (no silent loss);
* sinks are tiny and composable: a JSONL file, a Unix-domain socket
  (``python -m repro.obs top --socket`` listens on the other end), and an
  in-process subscriber callback for tests and embedding.

Snapshot schema ``repro.obs.snapshot/1`` (one JSON object per event)::

    {"schema": "repro.obs.snapshot/1", "seq": 7, "platform": "vp#0",
     "window": 42, "sim_time_ps": ..., "window_wall_ns": ...,
     "wall_ns": ..., "instructions": ..., "mips": ...,
     "dispatches": ..., "final": false,
     "lanes": {"main": {"busy_ns": ..., "utilization": ...,
                        "phases": {"guest": ..., ...}}, ...}}

The terminal snapshot (``final: true``) repeats the whole-run attribution
summary so a consumer that only keeps the last line still has the report.
"""

from __future__ import annotations

import json
import socket
from typing import Callable, Dict, List, Optional

SNAPSHOT_SCHEMA = "repro.obs.snapshot/1"

#: a socket sink gives up (goes dead) after this many consecutive failures
MAX_CONSECUTIVE_FAILURES = 8


class Sink:
    """Best-effort snapshot consumer; subclasses implement :meth:`emit`."""

    name = "sink"

    def __init__(self):
        self.accepted = 0
        self.dropped = 0

    def send(self, snapshot: dict) -> bool:
        """Deliver one snapshot; never raises.  Returns True on success."""
        try:
            self.emit(snapshot)
        except Exception:
            self.dropped += 1
            return False
        self.accepted += 1
        return True

    def emit(self, snapshot: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; never raises."""

    def stats(self) -> dict:
        return {"sink": self.name, "accepted": self.accepted,
                "dropped": self.dropped}


class JsonlSink(Sink):
    """One JSON object per line, flushed per snapshot (tail-friendly)."""

    name = "jsonl"

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        self._file = None

    def emit(self, snapshot: dict) -> None:
        if self._file is None:
            self._file = open(self.path, "w", encoding="utf-8")
        self._file.write(json.dumps(snapshot, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except Exception:
                pass
            self._file = None


class SubscriberSink(Sink):
    """In-process callback; exceptions in the callback count as drops."""

    name = "subscriber"

    def __init__(self, callback: Callable[[dict], None]):
        super().__init__()
        self.callback = callback

    def emit(self, snapshot: dict) -> None:
        self.callback(snapshot)


class SocketSink(Sink):
    """Newline-delimited JSON over a Unix-domain stream socket.

    Connects lazily on first emit; a missing or dead listener drops
    snapshots (accounted) rather than failing the run, and after
    :data:`MAX_CONSECUTIVE_FAILURES` consecutive failures the sink marks
    itself dead and stops trying (so a never-started listener costs one
    connect attempt per window at most, then nothing).
    """

    name = "socket"

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        self._sock: Optional[socket.socket] = None
        self._consecutive_failures = 0
        self.dead = False

    def send(self, snapshot: dict) -> bool:
        if self.dead:
            self.dropped += 1
            return False
        ok = super().send(snapshot)
        if ok:
            self._consecutive_failures = 0
        else:
            self._consecutive_failures += 1
            self._disconnect()
            if self._consecutive_failures >= MAX_CONSECUTIVE_FAILURES:
                self.dead = True
        return ok

    def emit(self, snapshot: dict) -> None:
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(self.path)
            self._sock = sock
        payload = (json.dumps(snapshot, sort_keys=True) + "\n").encode("utf-8")
        self._sock.sendall(payload)

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except Exception:
                pass
            self._sock = None

    def close(self) -> None:
        self._disconnect()


class ObsStreamer:
    """Fans snapshots out to sinks with stride thinning and a volume cap."""

    def __init__(self, sinks: Optional[List[Sink]] = None, every: int = 1,
                 max_snapshots: Optional[int] = None):
        if every < 1:
            raise ValueError(f"stride must be >= 1, got {every}")
        self.sinks: List[Sink] = list(sinks or [])
        self.every = every
        self.max_snapshots = max_snapshots
        self.seq = 0            # snapshots offered
        self.forwarded = 0      # snapshots that reached the sinks
        self.dropped_stride = 0
        self.dropped_cap = 0

    def add_sink(self, sink: Sink) -> Sink:
        self.sinks.append(sink)
        return sink

    def offer(self, snapshot: dict, force: bool = False) -> bool:
        """Forward ``snapshot`` unless thinned or capped.

        ``force`` bypasses stride and cap (the terminal summary snapshot
        must always reach the sinks).
        """
        seq = self.seq
        self.seq += 1
        if not force:
            if seq % self.every != 0:
                self.dropped_stride += 1
                return False
            if (self.max_snapshots is not None
                    and self.forwarded >= self.max_snapshots):
                self.dropped_cap += 1
                return False
        snapshot = dict(snapshot)
        snapshot.setdefault("schema", SNAPSHOT_SCHEMA)
        snapshot["seq"] = seq
        for sink in self.sinks:
            sink.send(snapshot)
        self.forwarded += 1
        return True

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

    def stats(self) -> dict:
        return {
            "offered": self.seq,
            "forwarded": self.forwarded,
            "dropped_stride": self.dropped_stride,
            "dropped_cap": self.dropped_cap,
            "sinks": [sink.stats() for sink in self.sinks],
        }
