"""repro.obs — continuous performance observability for virtual platforms.

Layers on top of :mod:`repro.telemetry`:

* :mod:`.attribution` — fold HostLedger billing into per-lane, per-window
  phases (guest / mmio / irq / kernel / barrier_idle / overhead) that sum
  exactly to ``HostLedger.wall_time_ns()``, plus the projected parallel
  efficiency the future parallel kernel will be graded against;
* :mod:`.engine` — ``enable_obs(vp)`` / ``observing()`` non-intrusive
  attachment (digest-neutral by construction);
* :mod:`.stream` — bounded, drop-accounted snapshot streaming to JSONL
  files, Unix sockets, and in-process subscribers;
* :mod:`.top` — plain-text live view helpers (``python -m repro.obs top``);
* :mod:`.trend` — ``BENCH_obs.json`` bench history, trend reports, and
  ratio gates.
"""

from .attribution import (AttributionFold, AttributionSummary,
                          CATEGORY_PHASES, PHASES, render_summary,
                          summarize_timeline)
from .engine import Obs, active_obs, enable_obs, maybe_attach, observing
from .stream import JsonlSink, ObsStreamer, Sink, SocketSink, SubscriberSink
from .trend import (append_entry, check_history, load_history, make_entry,
                    trend_report)

__all__ = [
    "AttributionFold", "AttributionSummary", "CATEGORY_PHASES", "PHASES",
    "render_summary", "summarize_timeline",
    "Obs", "active_obs", "enable_obs", "maybe_attach", "observing",
    "JsonlSink", "ObsStreamer", "Sink", "SocketSink", "SubscriberSink",
    "append_entry", "check_history", "load_history", "make_entry",
    "trend_report",
]
