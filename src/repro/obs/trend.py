"""Bench trend tracking: append run summaries, render trends, gate ratios.

``python -m repro.bench --history BENCH_obs.json`` appends one entry per
bench invocation — per-experiment MIPS, modeled wall time, and the phase
totals from the attribution fold — and ``--history-check`` compares the
newest entry against the median of the previous ones with a ratio gate.
Because the "performance" being trended is *modeled* host time, the
numbers are deterministic for a given revision: a gate failure means the
code changed the model, not that the CI machine was noisy.

History file schema ``repro.obs.bench-history/1``::

    {"schema": "repro.obs.bench-history/1",
     "entries": [{"timestamp": "...", "label": "...",
                  "experiments": {"fig5": {"mips": ..., "wall_ns": ...,
                                           "instructions": ...,
                                           "windows": ...,
                                           "phases": {"guest": ..., ...}}},
                  ...}]}

Entries are ordered oldest → newest and capped (oldest dropped first).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from ..host.wallclock import utc_timestamp
from .attribution import PHASES

HISTORY_SCHEMA = "repro.obs.bench-history/1"

#: default cap on retained entries (oldest dropped first)
DEFAULT_KEEP = 200

#: default allowed fractional MIPS regression vs. the baseline median
DEFAULT_TOLERANCE = 0.25


def load_history(path: str) -> dict:
    """Read a history file; a missing file is an empty history."""
    if not os.path.exists(path):
        return {"schema": HISTORY_SCHEMA, "entries": []}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    schema = data.get("schema")
    if schema != HISTORY_SCHEMA:
        raise ValueError(f"{path}: unsupported history schema {schema!r}")
    data.setdefault("entries", [])
    return data


def save_history(path: str, history: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")


def make_entry(experiments: Dict[str, List[dict]],
               label: str = "") -> dict:
    """Build one history entry from per-experiment attribution summaries.

    ``experiments`` maps experiment name to the list of per-platform
    attribution summary dicts (``AttributionSummary.to_json()``) the run
    produced; MIPS per experiment is the throughput of the whole matrix
    (total instructions over total modeled wall time), so one entry stays
    comparable run-to-run even though each experiment builds many
    platforms.
    """
    entry_experiments = {}
    for name, summaries in sorted(experiments.items()):
        instructions = sum(s.get("instructions", 0) for s in summaries)
        wall_ns = sum(s.get("wall_time_ns", 0.0) for s in summaries)
        windows = sum(s.get("windows", 0) for s in summaries)
        phases = {p: 0.0 for p in PHASES}
        for summary in summaries:
            for lane in summary.get("lanes", {}).values():
                for phase, nanoseconds in lane.get("phases", {}).items():
                    phases[phase] = phases.get(phase, 0.0) + nanoseconds
        entry_experiments[name] = {
            "mips": (instructions / wall_ns * 1e3) if wall_ns > 0 else 0.0,
            "wall_ns": wall_ns,
            "instructions": instructions,
            "windows": windows,
            "platforms": len(summaries),
            "phases": phases,
        }
    return {
        "timestamp": utc_timestamp(),
        "label": label,
        "experiments": entry_experiments,
    }


def append_entry(path: str, entry: dict, keep: int = DEFAULT_KEEP) -> dict:
    """Append ``entry`` to the history at ``path`` (created if missing)."""
    history = load_history(path)
    history["entries"].append(entry)
    if keep > 0:
        history["entries"] = history["entries"][-keep:]
    save_history(path, history)
    return history


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def check_history(history: dict,
                  tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Ratio-gate the newest entry against the median of the older ones.

    For every experiment present in both the newest entry and at least one
    older entry, fail if ``newest_mips < median_mips * (1 - tolerance)``.
    Returns a list of human-readable failures (empty == pass).  A history
    with fewer than two entries trivially passes — the first run *seeds*
    the baseline.
    """
    entries = history.get("entries", [])
    if len(entries) < 2:
        return []
    newest = entries[-1]
    failures = []
    for name, current in sorted(newest.get("experiments", {}).items()):
        baseline_mips = [
            entry["experiments"][name]["mips"]
            for entry in entries[:-1]
            if name in entry.get("experiments", {})
        ]
        if not baseline_mips:
            continue
        baseline = _median(baseline_mips)
        floor = baseline * (1.0 - tolerance)
        if current["mips"] < floor:
            failures.append(
                f"{name}: MIPS {current['mips']:.1f} fell below "
                f"{floor:.1f} (median of {len(baseline_mips)} baseline "
                f"entries = {baseline:.1f}, tolerance {tolerance:.0%})")
    return failures


def trend_report(history: dict, last: int = 10,
                 tolerance: float = DEFAULT_TOLERANCE) -> str:
    """Plain-text trend table over the last ``last`` entries."""
    entries = history.get("entries", [])[-last:]
    lines = [f"=== bench trend ({len(entries)} of "
             f"{len(history.get('entries', []))} entries) ==="]
    if not entries:
        lines.append("(history is empty — run repro.bench --history first)")
        return "\n".join(lines) + "\n"
    names = sorted({name for entry in entries
                    for name in entry.get("experiments", {})})
    header = f"{'timestamp':20s} {'label':12s}" + "".join(
        f" {name:>14s}" for name in names)
    lines.append(header)
    lines.append(f"{'':20s} {'':12s}" + "".join(
        f" {'(MIPS)':>14s}" for _ in names))
    for entry in entries:
        cells = []
        for name in names:
            experiment = entry.get("experiments", {}).get(name)
            cells.append(f" {experiment['mips']:14.1f}" if experiment
                         else f" {'-':>14s}")
        label = (entry.get("label") or "")[:12]
        lines.append(f"{entry.get('timestamp', '?'):20s} {label:12s}"
                     + "".join(cells))
    failures = check_history(history, tolerance)
    if failures:
        lines.append("REGRESSIONS:")
        lines.extend(f"  !! {failure}" for failure in failures)
    else:
        lines.append(f"gate: OK (newest within {tolerance:.0%} of the "
                     f"baseline median)")
    return "\n".join(lines) + "\n"
