"""Attach the observability layer to a running virtual platform.

``enable_obs(vp)`` is the performance twin of
:func:`repro.telemetry.instrument.enable_telemetry`: one call, no model
changes, pure observation, fully undoable.  Three taps per platform:

* every CPU's ``bill_host_time`` — the single funnel all modeled host-time
  billing flows through — is wrapped to mirror each event into an
  :class:`~repro.obs.attribution.AttributionFold`.  The wrap records *two*
  lane views per event: the actual ledger lane (so the per-window wall
  fold reproduces :meth:`HostLedger.window_span_ns` bit-for-bit) and the
  attribution lane the event would land on under the parallel fold (main
  thread vs. per-core), which is how a sequential run already yields the
  per-lane report the parallel kernel will be graded against;
* the kernel's ``time_hook`` (fired after every simulated-time advance,
  never for delta cycles) closes quantum windows deterministically: when
  simulation reaches time *T*, every window ending before *T* can no
  longer receive billing, so it is folded and streamed as one snapshot;
* the kernel's ``run`` is wrapped to *seal* the platform once its run has
  finished (all cores halted or the guest requested shutdown): the final
  windows fold, the terminal summary streams, every tap is restored, and
  the engine drops its platform reference.  One ``observing()`` scope can
  therefore span a whole bench matrix without keeping dozens of finished
  platforms (and their RAM backings) alive.

Digest neutrality: no tap touches simulation state; the kernel
``trace_hook`` used for dispatch counting chains to whatever hook was
installed before it (telemetry's instance hook or the determinism
checker's class hook) with unmodified arguments, so DET001 and the
divergence ledger see identical event streams with obs on or off.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..host.machine import MAIN_LANE
from ..systemc.kernel import Kernel
from ..telemetry.wrapping import WrapSet
from .attribution import AttributionFold, AttributionSummary, WindowRecord
from .stream import ObsStreamer, Sink


@dataclass
class _PlatformEntry:
    key: str
    vp: Optional[object]                 # dropped when the entry seals
    fold: Optional[AttributionFold]
    wraps: WrapSet = field(default_factory=WrapSet)
    window_ps: int = 0
    num_cores: int = 0
    cumulative_wall_ns: float = 0.0
    windows_closed: int = 0
    sealed: bool = False
    #: last-known run state, authoritative once the entry is sealed
    cached_instructions: int = 0
    cached_sim_ps: int = 0
    cached_measured: Optional[dict] = None
    lanes_cache: Dict[int, None] = field(default_factory=dict)

    def instructions(self) -> int:
        if self.vp is not None:
            self.cached_instructions = self.vp.total_instructions()
        return self.cached_instructions

    def sim_time_ps(self) -> int:
        if self.vp is not None:
            self.cached_sim_ps = self.vp.kernel.now.picoseconds
        return self.cached_sim_ps

    def measured_stats(self) -> Optional[dict]:
        """Quantum-executor measured ledger (None on the legacy loop)."""
        if self.vp is not None:
            executor = getattr(self.vp, "executor", None)
            if executor is not None:
                self.cached_measured = executor.measured.to_json()
        return self.cached_measured


class Obs:
    """One observability scope: an attribution fold + streamer per platform."""

    def __init__(self, sinks: Optional[List[Sink]] = None, every: int = 1,
                 max_snapshots: Optional[int] = None):
        self.streamer = ObsStreamer(sinks, every=every,
                                    max_snapshots=max_snapshots)
        self.platforms: List[_PlatformEntry] = []
        self._attached = True

    # -- attachment ---------------------------------------------------------
    def attach(self, vp) -> "Obs":
        """Observe a whole virtual platform (idempotence-guarded).

        Platforms without a host ledger (``track_host_time`` off) attach as
        inert entries: there is nothing to attribute, but ``vp.obs`` still
        points here so callers need not special-case the configuration.
        """
        if getattr(vp, "obs", None) is not None:
            raise ValueError(f"platform {vp.name!r} already has obs attached")
        key = f"{vp.name}#{len(self.platforms)}"
        ledger = getattr(vp, "ledger", None)
        num_cores = len(getattr(vp, "cpus", ()))
        if ledger is None:
            entry = _PlatformEntry(key, vp, None, num_cores=num_cores)
            self.platforms.append(entry)
            vp.obs = self
            return self
        entry = _PlatformEntry(key, vp, AttributionFold(ledger),
                               window_ps=ledger.window_size.picoseconds,
                               num_cores=num_cores or ledger.num_cores)
        entry.fold.on_window = (
            lambda record, entry=entry: self._on_window(entry, record))
        self.platforms.append(entry)
        vp.obs = self
        for cpu in vp.cpus:
            self._attach_cpu(entry, cpu)
        self._attach_kernel(entry, vp.kernel)
        return self

    def detach(self) -> None:
        """Seal every platform (final fold + summary), undo every tap."""
        self.finalize()
        self.streamer.close()
        self._attached = False

    # -- taps ---------------------------------------------------------------
    def _attach_cpu(self, entry: _PlatformEntry, cpu) -> None:
        fold = entry.fold

        def make_bill(original):
            def bill_host_time(nanoseconds, category="cpu",
                               main_thread=False):
                original(nanoseconds, category, main_thread)
                if cpu.host_ledger is None or nanoseconds <= 0:
                    return
                # Attribution lane: where the event lands under the
                # parallel fold.  Actual lane: where the ledger put it now.
                attr_lane = MAIN_LANE if main_thread else cpu.core_id
                if main_thread or not cpu.parallel:
                    actual_lane = MAIN_LANE
                else:
                    actual_lane = cpu.core_id
                window = (cpu.keeper.current_time()
                          // cpu.host_ledger.window_size)
                fold.record(window, attr_lane, actual_lane, nanoseconds,
                            category)
            return bill_host_time

        entry.wraps.wrap(cpu, "bill_host_time", make_bill)

    def _attach_kernel(self, entry: _PlatformEntry, kernel: Kernel) -> None:
        fold = entry.fold
        window_ps = entry.window_ps

        # Window-boundary detection: piggyback on simulated-time advances.
        previous_time_hook = kernel.time_hook

        def time_hook(now_ps: int) -> None:
            if previous_time_hook is not None:
                previous_time_hook(now_ps)
            fold.advance_to(now_ps)

        entry.wraps.set(kernel, "time_hook", time_hook)

        # Dispatch counting: chain through the same per-instance seam the
        # telemetry layer uses.  An instance hook installed before us (e.g.
        # telemetry's) is chained directly; otherwise defer to the
        # *class-level* hook at call time so a determinism checker
        # installed later is never shadowed.
        previous_instance_hook = kernel.__dict__.get("trace_hook")

        def trace_hook(kind: str, time_ps: int, name: str) -> None:
            chained = previous_instance_hook
            if chained is None:
                chained = Kernel.trace_hook
            if chained is not None:
                chained(kind, time_ps, name)
            fold.record_dispatch(time_ps // window_ps)

        entry.wraps.set(kernel, "trace_hook", trace_hook)

        # Seal the entry when the run is over, releasing the platform.
        def make_run(original):
            def run(duration=None):
                end_time = original(duration)
                vp = entry.vp
                if vp is not None and (
                        vp.all_halted
                        or getattr(getattr(vp, "simctl", None),
                                   "shutdown_requested", False)):
                    self._seal(entry)
                return end_time
            return run

        entry.wraps.wrap(kernel, "run", make_run)

    # -- window snapshots ----------------------------------------------------
    def _on_window(self, entry: _PlatformEntry, record: WindowRecord) -> None:
        entry.cumulative_wall_ns += record.wall_ns
        entry.windows_closed += 1
        for lane in record.busy_ns:
            entry.lanes_cache.setdefault(lane)
        self.streamer.offer(self._window_snapshot(entry, record))

    def _window_snapshot(self, entry: _PlatformEntry,
                         record: WindowRecord) -> dict:
        from .attribution import PHASES, lane_name
        lanes = {}
        for lane in sorted(entry.lanes_cache):
            busy = record.busy_ns.get(lane, 0.0)
            phases = record.phases.get(lane, {})
            lanes[lane_name(lane)] = {
                "busy_ns": busy,
                "utilization": busy / record.wall_ns if record.wall_ns > 0
                               else 0.0,
                "phases": {p: phases.get(p, 0.0) for p in PHASES
                           if phases.get(p, 0.0) > 0.0},
            }
        instructions = entry.instructions()
        wall_ns = entry.cumulative_wall_ns
        return {
            "platform": entry.key,
            "window": record.window,
            "sim_time_ps": (record.window + 1) * entry.window_ps,
            "window_wall_ns": record.wall_ns,
            "wall_ns": wall_ns,
            "instructions": instructions,
            "mips": (instructions / wall_ns * 1e3) if wall_ns > 0 else 0.0,
            "dispatches": record.dispatches,
            "final": False,
            "lanes": lanes,
        }

    # -- sealing / results ---------------------------------------------------
    def _seal(self, entry: _PlatformEntry) -> None:
        """Finalize one platform's fold, stream its terminal summary,
        restore its taps, and drop the platform reference."""
        if entry.sealed:
            return
        entry.sealed = True
        # Refresh the caches while the platform is still reachable.
        entry.instructions()
        entry.sim_time_ps()
        entry.measured_stats()
        if entry.fold is not None:
            entry.fold.finalize()
            self.streamer.offer({
                "platform": entry.key,
                "final": True,
                "summary": self._summary(entry).to_json(),
                "stream": self.streamer.stats(),
            }, force=True)
        entry.wraps.restore()
        vp, entry.vp = entry.vp, None
        if vp is not None and getattr(vp, "obs", None) is self:
            vp.obs = None

    def finalize(self) -> None:
        """Seal every platform that has not sealed itself yet."""
        for entry in self.platforms:
            self._seal(entry)

    def _summary(self, entry: _PlatformEntry,
                 include_open: bool = False) -> AttributionSummary:
        summary = entry.fold.summary(
            platform=entry.key,
            num_cores=entry.num_cores,
            sim_time_ps=entry.sim_time_ps(),
            instructions=entry.instructions(),
            include_open=include_open,
        )
        summary.measured = entry.measured_stats()
        return summary

    def summaries(self, include_open: bool = False
                  ) -> Dict[str, AttributionSummary]:
        """Whole-run attribution summary per attached (ledgered) platform.

        ``include_open`` folds still-open windows non-destructively — use it
        for live snapshots and crash bundles taken mid-run.
        """
        return {entry.key: self._summary(entry, include_open)
                for entry in self.platforms if entry.fold is not None}

    def summary_for(self, vp, include_open: bool = True
                    ) -> Optional[AttributionSummary]:
        for entry in self.platforms:
            if entry.vp is vp and entry.fold is not None:
                return self._summary(entry, include_open)
        return None

    def report(self) -> str:
        from .attribution import render_summary
        return "".join(render_summary(summary)
                       for summary in self.summaries(include_open=True)
                       .values())

    def stream_stats(self) -> dict:
        return self.streamer.stats()


def enable_obs(vp, sinks: Optional[List[Sink]] = None, every: int = 1,
               max_snapshots: Optional[int] = None) -> Obs:
    """Observe ``vp`` with a fresh scope; returns the :class:`Obs` handle,
    also reachable as ``vp.obs``."""
    obs = Obs(sinks, every=every, max_snapshots=max_snapshots)
    obs.attach(vp)
    return obs


# -- collection context (used by repro.bench and repro.vp.build_platform) ------

_ACTIVE: List[Obs] = []


def active_obs() -> Optional[Obs]:
    """The innermost open ``observing()`` scope, if any."""
    return _ACTIVE[-1] if _ACTIVE else None


def maybe_attach(vp) -> Optional[Obs]:
    """Attach ``vp`` to the active observing scope (no-op without one)."""
    obs = active_obs()
    if obs is not None:
        obs.attach(vp)
    return obs


@contextlib.contextmanager
def observing(sinks: Optional[List[Sink]] = None, every: int = 1,
              max_snapshots: Optional[int] = None):
    """Scope within which every ``build_platform`` auto-attaches obs.

    ``repro.bench.runner`` wraps each experiment in one of these when
    ``--obs-dir`` or ``--history`` is given, so the attribution report
    written next to the experiment result covers every platform the
    experiment built, without the experiments knowing.
    """
    obs = Obs(sinks, every=every, max_snapshots=max_snapshots)
    _ACTIVE.append(obs)
    try:
        yield obs
    finally:
        _ACTIVE.remove(obs)
        obs.detach()
