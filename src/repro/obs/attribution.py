"""Host-time attribution: fold HostLedger billing into per-lane phases.

The paper's headline figures (Fig. 5/7) are *host wall-clock breakdowns*:
where does each simulated second of a run go — guest execution inside
KVM_RUN, MMIO round trips, IRQ injection, kernel/merge bookkeeping, or
waiting at the quantum barrier?  This module derives exactly that from the
billing stream of :class:`repro.host.accounting.HostLedger`.

Phase taxonomy (DESIGN.md §14) — every ledger billing category maps onto
one phase, plus two derived phases per quantum window:

=================  ============================================================
``guest``          time inside the guest (KVM_RUN / ISS dispatch), including
                   runs that blocked in un-annotated WFI
``mmio``           MMIO round trips and user-space instruction emulation
``irq``            interrupt-injection ioctls (main-thread work)
``kernel``         VP bookkeeping billed by the models: watchdog programming,
                   WFI suspend/resume, uncategorized ``cpu`` work
``barrier_idle``   the window's fold-busy minus this lane's busy: in parallel
                   mode the modeled wait at the quantum barrier, in
                   sequential mode the time this lane's work waits while the
                   other lanes' legs are serialized
``overhead``       the fold's per-window constants (sequential loop /
                   parallel dispatch-join + kernel-per-window), i.e.
                   ``window_span_ns`` minus the window's fold-busy
=================  ============================================================

The fold re-runs :meth:`HostLedger.window_span_ns` per window over the
*actual* ledger lane totals (rebuilt in billing order, so the floats match
the ledger's own accumulation bit-for-bit) and assigns each lane
``barrier_idle`` and ``overhead`` as residuals, which makes every lane's
phases sum to the window's span — and, across windows, to
``HostLedger.wall_time_ns()`` — exactly, up to float associativity in the
final summation (sub-ulp; :meth:`AttributionSummary.verify` checks it at
1e-6 ns).

Attribution lanes are *per-core even in sequential mode*: the recorder
keeps the lane a billing event would land on under the parallel fold
(``main`` for main-thread work, ``core<i>`` otherwise), so a serial run
already produces the per-lane report — and the projected parallel
efficiency — that the future parallel kernel will be graded against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..host.machine import MAIN_LANE

#: phase names, in report order
PHASE_GUEST = "guest"
PHASE_MMIO = "mmio"
PHASE_IRQ = "irq"
PHASE_KERNEL = "kernel"
PHASE_IDLE = "barrier_idle"
PHASE_OVERHEAD = "overhead"
PHASES: Tuple[str, ...] = (PHASE_GUEST, PHASE_MMIO, PHASE_IRQ, PHASE_KERNEL,
                           PHASE_IDLE, PHASE_OVERHEAD)

#: ledger billing category -> phase (unknown categories land in ``kernel``)
CATEGORY_PHASES: Dict[str, str] = {
    "guest": PHASE_GUEST,
    "iss": PHASE_GUEST,
    "wfi_blocked": PHASE_GUEST,
    "mmio": PHASE_MMIO,
    "emulation": PHASE_MMIO,
    "irq": PHASE_IRQ,
    "watchdog": PHASE_KERNEL,
    "wfi_annotation": PHASE_KERNEL,
    "cpu": PHASE_KERNEL,
}

#: relative/absolute tolerance for the phases-sum-to-wall identity: the
#: construction is exact up to float associativity, so anything beyond a
#: few ulps is a real accounting bug.
SUM_REL_TOL = 1e-9
SUM_ABS_TOL = 1e-6      # nanoseconds


def phase_of(category: str) -> str:
    return CATEGORY_PHASES.get(category, PHASE_KERNEL)


def lane_name(lane: int) -> str:
    return "main" if lane == MAIN_LANE else f"core{lane}"


def _lane_sort_key(name: str):
    return (0, 0) if name == "main" else (1, int(name.replace("core", "")))


@dataclass
class WindowRecord:
    """One folded quantum window: authoritative span + per-lane phases."""

    window: int
    wall_ns: float                                  # ledger window_span_ns
    busy_ns: Dict[int, float]                       # attribution lane -> busy
    phases: Dict[int, Dict[str, float]]             # lane -> phase -> ns
    fold_busy_ns: float                             # max (parallel) / sum (seq)
    dispatches: int = 0                             # kernel dispatches billed


@dataclass
class AttributionSummary:
    """Whole-run fold: the Fig. 5/7-style report for one platform."""

    platform: str
    parallel: bool
    num_cores: int
    window_count: int
    wall_time_ns: float
    quantum_ps: int
    sim_time_ps: int
    instructions: int
    lanes: Dict[str, Dict[str, float]]              # lane name -> phase -> ns
    lane_wall_ns: Dict[str, float]                  # lane name -> total extent
    busy_sum_ns: float = 0.0                        # Σ_w Σ_lanes busy
    busy_max_ns: float = 0.0                        # Σ_w max_lane busy
    dispatches: int = 0
    late_events: int = 0
    notes: Dict[str, object] = field(default_factory=dict)
    #: measured executor stats (repro.systemc.parallel MeasuredLedger
    #: to_json), present only when a quantum executor ran the platform
    measured: Optional[Dict[str, object]] = None

    # -- derived figures ----------------------------------------------------
    @property
    def wall_time_seconds(self) -> float:
        return self.wall_time_ns / 1e9

    @property
    def mips(self) -> float:
        if self.wall_time_ns <= 0:
            return 0.0
        return self.instructions / self.wall_time_seconds / 1e6

    @property
    def projected_parallel_speedup(self) -> float:
        """Speedup the parallel (max) fold would deliver over serializing
        the same per-lane busy time: sum-of-lane-busy / max-lane-window."""
        if self.busy_max_ns <= 0:
            return 1.0
        return self.busy_sum_ns / self.busy_max_ns

    @property
    def projected_parallel_efficiency(self) -> float:
        """Projected speedup normalized by the number of core lanes."""
        return self.projected_parallel_speedup / max(1, self.num_cores)

    def lane_utilization(self) -> Dict[str, float]:
        """busy / wall per lane (the counter-track value Perfetto shows)."""
        out = {}
        for name, phases in self.lanes.items():
            wall = self.lane_wall_ns.get(name, 0.0)
            busy = sum(phases.get(p, 0.0) for p in
                       (PHASE_GUEST, PHASE_MMIO, PHASE_IRQ, PHASE_KERNEL))
            out[name] = busy / wall if wall > 0 else 0.0
        return out

    # -- invariants ---------------------------------------------------------
    def verify(self) -> List[str]:
        """Check that every lane's phases sum to the run's wall time.

        Returns a list of human-readable problems (empty == consistent).
        """
        problems: List[str] = []
        for name in sorted(self.lanes, key=_lane_sort_key):
            total = sum(self.lanes[name].get(p, 0.0) for p in PHASES)
            reference = self.lane_wall_ns.get(name, self.wall_time_ns)
            bound = max(SUM_ABS_TOL, SUM_REL_TOL * abs(reference))
            if abs(total - reference) > bound:
                problems.append(
                    f"lane {name}: phases sum to {total!r} ns, "
                    f"wall is {reference!r} ns")
        if self.late_events:
            problems.append(f"{self.late_events} billing events arrived for "
                            f"already-finalized windows")
        return problems

    # -- export -------------------------------------------------------------
    def to_json(self) -> dict:
        lanes = {}
        utilization = self.lane_utilization()
        for name in sorted(self.lanes, key=_lane_sort_key):
            phases = self.lanes[name]
            lanes[name] = {
                "phases": {p: phases.get(p, 0.0) for p in PHASES},
                "busy_ns": sum(phases.get(p, 0.0) for p in
                               (PHASE_GUEST, PHASE_MMIO, PHASE_IRQ,
                                PHASE_KERNEL)),
                "wall_ns": self.lane_wall_ns.get(name, self.wall_time_ns),
                "utilization": utilization[name],
            }
        return {
            "schema": "repro.obs.attribution/1",
            "platform": self.platform,
            "parallel": self.parallel,
            "num_cores": self.num_cores,
            "quantum_ps": self.quantum_ps,
            "windows": self.window_count,
            "wall_time_ns": self.wall_time_ns,
            "sim_time_ps": self.sim_time_ps,
            "instructions": self.instructions,
            "mips": self.mips,
            "dispatches": self.dispatches,
            "lanes": lanes,
            "projected": {
                "parallel_speedup": self.projected_parallel_speedup,
                "parallel_efficiency": self.projected_parallel_efficiency,
                "busy_sum_ns": self.busy_sum_ns,
                "busy_max_ns": self.busy_max_ns,
            },
            "measured": self.measured,
            "consistent": not self.verify(),
        }


class AttributionFold:
    """Incremental window folder.

    Billing events are recorded per window as ``(attribution lane, actual
    ledger lane, nanoseconds, category)``; windows are finalized in
    first-seen order — eagerly, when the recorder learns simulated time has
    passed a window's end, or all at once by :meth:`finalize`.  Finalized
    windows are handed to ``on_window`` (the streaming exporter) and
    accumulated into the whole-run summary.
    """

    def __init__(self, ledger,
                 on_window: Optional[Callable[[WindowRecord], None]] = None):
        self.ledger = ledger
        self.on_window = on_window
        #: open windows, insertion-ordered: window -> event list
        self._events: Dict[int, List[Tuple[int, int, float, str]]] = {}
        self._dispatches: Dict[int, int] = {}
        self._finalized: List[WindowRecord] = []
        self._lanes_seen: Dict[int, None] = {MAIN_LANE: None}
        self.late_events = 0

    # -- recording ----------------------------------------------------------
    def record(self, window: int, attr_lane: int, actual_lane: int,
               nanoseconds: float, category: str) -> None:
        if self._finalized and window <= self._finalized[-1].window:
            self.late_events += 1
            return
        self._events.setdefault(window, []).append(
            (attr_lane, actual_lane, nanoseconds, category))
        self._lanes_seen.setdefault(attr_lane)

    def record_dispatch(self, window: int) -> None:
        if self._finalized and window <= self._finalized[-1].window:
            return
        self._dispatches[window] = self._dispatches.get(window, 0) + 1

    def advance_to(self, sim_time_ps: int) -> List[WindowRecord]:
        """Finalize every open window that ended before ``sim_time_ps``.

        A core's quantum leg starting at kernel time *t* can bill windows
        ``t // quantum`` and the one after, so a window is only complete
        once simulated time has moved past its end.
        """
        boundary = sim_time_ps // self.ledger.window_size.picoseconds
        done = [w for w in self._events if w < boundary]
        return [self._finalize_window(w) for w in done]

    def finalize(self) -> List[WindowRecord]:
        """Finalize every remaining open window (end of run / detach)."""
        return [self._finalize_window(w) for w in list(self._events)]

    # -- folding ------------------------------------------------------------
    def _finalize_window(self, window: int) -> WindowRecord:
        events = self._events.pop(window)
        # Rebuild the ledger's own per-lane totals in billing order so the
        # span fold sees bit-identical floats.
        actual_totals: Dict[int, float] = {}
        busy: Dict[int, float] = {}
        phases: Dict[int, Dict[str, float]] = {}
        for attr_lane, actual_lane, nanoseconds, category in events:
            actual_totals[actual_lane] = (
                actual_totals.get(actual_lane, 0.0) + nanoseconds)
            busy[attr_lane] = busy.get(attr_lane, 0.0) + nanoseconds
            lane_phases = phases.setdefault(attr_lane, {})
            phase = phase_of(category)
            lane_phases[phase] = lane_phases.get(phase, 0.0) + nanoseconds
        wall = self.ledger.window_span_ns(actual_totals)
        if self.ledger.parallel:
            fold_busy = max(busy.values()) if busy else 0.0
        else:
            fold_busy = sum(busy.values())
        record = WindowRecord(window, wall, busy, phases, fold_busy,
                              self._dispatches.pop(window, 0))
        self._finalized.append(record)
        if self.on_window is not None:
            self.on_window(record)
        return record

    # -- results ------------------------------------------------------------
    def records(self) -> List[WindowRecord]:
        return list(self._finalized)

    def summary(self, platform: str = "", num_cores: int = 0,
                sim_time_ps: int = 0, instructions: int = 0,
                include_open: bool = False) -> AttributionSummary:
        """Fold all finalized windows into the whole-run report.

        ``include_open`` additionally folds still-open windows *without*
        finalizing them (used for live snapshots and crash bundles taken
        mid-window).
        """
        records = list(self._finalized)
        if include_open:
            probe = AttributionFold(self.ledger)
            probe._events = {w: list(ev) for w, ev in self._events.items()}
            probe._dispatches = dict(self._dispatches)
            records += probe.finalize()
        lanes: Dict[str, Dict[str, float]] = {
            lane_name(lane): {} for lane in self._lanes_seen}
        lane_wall: Dict[str, float] = {name: 0.0 for name in lanes}
        wall_total = 0.0
        busy_sum = 0.0
        busy_max = 0.0
        dispatches = 0
        for record in records:
            overhead = record.wall_ns - record.fold_busy_ns
            wall_total += record.wall_ns
            busy_sum += sum(record.busy_ns.values())
            busy_max += max(record.busy_ns.values()) if record.busy_ns else 0.0
            dispatches += record.dispatches
            for name in lanes:
                lane_wall[name] += record.wall_ns
            for lane, lane_phases in record.phases.items():
                target = lanes[lane_name(lane)]
                for phase, nanoseconds in lane_phases.items():
                    target[phase] = target.get(phase, 0.0) + nanoseconds
            for name in lanes:
                lane = (MAIN_LANE if name == "main"
                        else int(name.replace("core", "")))
                idle = record.fold_busy_ns - record.busy_ns.get(lane, 0.0)
                target = lanes[name]
                target[PHASE_IDLE] = target.get(PHASE_IDLE, 0.0) + idle
                target[PHASE_OVERHEAD] = (
                    target.get(PHASE_OVERHEAD, 0.0) + overhead)
        return AttributionSummary(
            platform=platform,
            parallel=self.ledger.parallel,
            num_cores=num_cores or self.ledger.num_cores,
            window_count=len(records),
            wall_time_ns=wall_total,
            quantum_ps=self.ledger.window_size.picoseconds,
            sim_time_ps=sim_time_ps,
            instructions=instructions,
            lanes=lanes,
            lane_wall_ns=lane_wall,
            busy_sum_ns=busy_sum,
            busy_max_ns=busy_max,
            dispatches=dispatches,
            late_events=self.late_events,
        )


def summarize_timeline(vp, timeline) -> Optional[AttributionSummary]:
    """Fold a :class:`repro.telemetry.spans.HostTimeline` into a summary.

    Fallback for runs that carried telemetry but no ``repro.obs`` tap
    (e.g. crash bundles): the timeline's events use the *ledger's* lanes
    (collapsed to ``main`` in sequential mode), so the per-core projection
    is unavailable, but phases, windows and the wall fold are identical.
    """
    ledger = getattr(vp, "ledger", None)
    if ledger is None or timeline is None:
        return None
    fold = AttributionFold(ledger)
    for window, events in timeline.window_events().items():
        for lane, nanoseconds, category in events:
            fold.record(window, lane, lane, nanoseconds, category)
    fold.finalize()
    return fold.summary(
        platform=getattr(vp, "name", ""),
        num_cores=len(getattr(vp, "cpus", ())) or ledger.num_cores,
        sim_time_ps=vp.kernel.now.picoseconds,
        instructions=vp.total_instructions(),
    )


def render_summary(summary: AttributionSummary) -> str:
    """Plain-text Fig. 5/7-style attribution table."""
    lines = [f"=== host-time attribution: {summary.platform or '(platform)'} "
             f"[{'parallel' if summary.parallel else 'sequential'}] ==="]
    lines.append(
        f"wall {summary.wall_time_ns / 1e6:.3f} ms over "
        f"{summary.window_count} windows "
        f"(quantum {summary.quantum_ps / 1e6:.0f} us)  "
        f"instructions {summary.instructions}  MIPS {summary.mips:.0f}")
    lines.append(
        f"projected parallel speedup {summary.projected_parallel_speedup:.2f}x"
        f"  efficiency {summary.projected_parallel_efficiency:.2f}")
    measured = summary.measured
    if measured is not None:
        lines.append(
            f"measured parallel speedup {measured.get('speedup', 0.0):.2f}x"
            f"  [{measured.get('backend', '?')} executor, "
            f"{measured.get('rounds', 0)} rounds, "
            f"{measured.get('legs', 0)} legs]")
    header = f"{'lane':8s} {'util':>6s}" + "".join(
        f" {phase:>12s}" for phase in PHASES)
    lines.append(header)
    utilization = summary.lane_utilization()
    for name in sorted(summary.lanes, key=_lane_sort_key):
        phases = summary.lanes[name]
        cells = "".join(f" {phases.get(p, 0.0) / 1e6:12.3f}" for p in PHASES)
        lines.append(f"{name:8s} {utilization[name] * 100:5.1f}%" + cells)
    lines.append("(phase columns in ms; rows sum to the wall time)")
    problems = summary.verify()
    for problem in problems:
        lines.append(f"!! {problem}")
    return "\n".join(lines) + "\n"
