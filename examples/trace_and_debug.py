#!/usr/bin/env python3
"""Introspection tooling: non-intrusive tracing and source-level debugging.

The paper's introduction motivates VPs with "deep introspection [and]
insightful tracing facilities".  This demo exercises both on one guest:

1. attach the NISTT-style tracer to the whole platform (bus + IRQ lines),
2. attach the debugger, break at a guest function, inspect registers and
   disassembly, single-step through it,
3. continue to completion and print the transaction statistics and an IRQ
   waveform (VCD),
4. force a watchdog "wedge" (the same KVM_RUN kicked twice) and walk the
   post-mortem crash bundle the flight recorder dumps in response.

Run:  python examples/trace_and_debug.py
"""

import json
import os
import tempfile

from repro.arch import assemble
from repro.debug import Debugger
from repro.flight import enable_flight
from repro.systemc import SimTime
from repro.trace import attach_platform
from repro.vp import GuestSoftware, VpConfig, build_platform

GUEST = """
.equ UART_HI, 0x0904
.equ RTC_HI, 0x0905
.equ SIMCTL_HI, 0x090F

_start:
    movz x0, #12
    bl triple
    movz x9, #0x4000
    str x0, [x9]
    // read the wall clock, then say goodbye
    movz x1, #RTC_HI, lsl #16
    ldrw x2, [x1]
    movz x3, #UART_HI, lsl #16
    movz x4, #0x42              // 'B'
    strb x4, [x3]
    movz x5, #SIMCTL_HI, lsl #16
    str x5, [x5]
    hlt #0

triple:
    add x1, x0, x0
    add x0, x1, x0
    ret
"""


def main():
    image = assemble(GUEST, base_address=0x1000)
    software = GuestSoftware(image=image, mode="interpreter", name="introspect")
    vp = build_platform("aoa", VpConfig(num_cores=1), software)

    tracer = attach_platform(vp)
    flight = enable_flight(
        vp, crash_dir=os.path.join(tempfile.gettempdir(), "repro-bundles"))
    debugger = Debugger(vp)

    print("== break at triple() ==")
    debugger.add_breakpoint("triple")
    stop = debugger.continue_(SimTime.ms(10))
    print(f"stopped: {stop}")
    print(f"x0 (argument) = {debugger.read_register('x0')}")
    for line in debugger.disassemble("triple", count=3):
        print(line)

    print("\n== single-step through it ==")
    for _ in range(3):
        debugger.step()
        print(f"{debugger.where():<30} x0={debugger.read_register('x0')} "
              f"x1={debugger.read_register('x1')}")

    print("\n== continue to completion ==")
    stop = debugger.continue_(SimTime.ms(50))
    print(f"stopped: {stop}")
    print(f"console: {vp.console_output()!r}")
    result = int.from_bytes(debugger.read_memory(0x4000, 8), "little")
    print(f"guest computed triple(12) = {result}")

    print("\n== transaction trace (first 6) ==")
    print(tracer.to_text(limit=6))

    print("\n== per-target statistics ==")
    for socket, stats in tracer.statistics().items():
        print(f"  {socket}: {stats}")

    print(f"\ntotal transactions observed: {len(tracer)}")

    print("\n== force a watchdog fire, inspect the crash bundle ==")
    # Arm the same run id twice with a zero budget: the second delivered
    # kick means SIGUSR1 failed to end KVM_RUN — a wedged core.  The flight
    # recorder reacts by dumping a post-mortem bundle.
    flight.force_watchdog_fire(vp, core=0)
    bundle = flight.bundler.bundles[-1]
    meta = json.load(open(os.path.join(bundle, "meta.json")))
    print(f"bundle reason  : {meta['reason']} ({meta['detail']})")
    print(f"sim time       : {meta['sim_time_ps']} ps")
    core0 = json.load(open(os.path.join(bundle, "cores", "core0.json")))
    print(f"core0 pc       : 0x{core0['registers']['pc']:x}")
    print(f"core0 backtrace: {core0['backtrace']}")
    with open(os.path.join(bundle, "journal.jsonl")) as stream:
        events = [json.loads(line) for line in stream]
    print(f"journal tail   : {len(events)} events; last 3:")
    for event in events[-3:]:
        print(f"  {event}")
    print("disassembly around the PC:")
    with open(os.path.join(bundle, "cores", "core0.disasm.txt")) as stream:
        for line in stream.read().splitlines()[:6]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
