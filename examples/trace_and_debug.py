#!/usr/bin/env python3
"""Introspection tooling: non-intrusive tracing and source-level debugging.

The paper's introduction motivates VPs with "deep introspection [and]
insightful tracing facilities".  This demo exercises both on one guest:

1. attach the NISTT-style tracer to the whole platform (bus + IRQ lines),
2. attach the debugger, break at a guest function, inspect registers and
   disassembly, single-step through it,
3. continue to completion and print the transaction statistics and an IRQ
   waveform (VCD).

Run:  python examples/trace_and_debug.py
"""

from repro.arch import assemble
from repro.debug import Debugger
from repro.systemc import SimTime
from repro.trace import attach_platform
from repro.vp import GuestSoftware, VpConfig, build_platform

GUEST = """
.equ UART_HI, 0x0904
.equ RTC_HI, 0x0905
.equ SIMCTL_HI, 0x090F

_start:
    movz x0, #12
    bl triple
    movz x9, #0x4000
    str x0, [x9]
    // read the wall clock, then say goodbye
    movz x1, #RTC_HI, lsl #16
    ldrw x2, [x1]
    movz x3, #UART_HI, lsl #16
    movz x4, #0x42              // 'B'
    strb x4, [x3]
    movz x5, #SIMCTL_HI, lsl #16
    str x5, [x5]
    hlt #0

triple:
    add x1, x0, x0
    add x0, x1, x0
    ret
"""


def main():
    image = assemble(GUEST, base_address=0x1000)
    software = GuestSoftware(image=image, mode="interpreter", name="introspect")
    vp = build_platform("aoa", VpConfig(num_cores=1), software)

    tracer = attach_platform(vp)
    debugger = Debugger(vp)

    print("== break at triple() ==")
    debugger.add_breakpoint("triple")
    stop = debugger.continue_(SimTime.ms(10))
    print(f"stopped: {stop}")
    print(f"x0 (argument) = {debugger.read_register('x0')}")
    for line in debugger.disassemble("triple", count=3):
        print(line)

    print("\n== single-step through it ==")
    for _ in range(3):
        debugger.step()
        print(f"{debugger.where():<30} x0={debugger.read_register('x0')} "
              f"x1={debugger.read_register('x1')}")

    print("\n== continue to completion ==")
    stop = debugger.continue_(SimTime.ms(50))
    print(f"stopped: {stop}")
    print(f"console: {vp.console_output()!r}")
    result = int.from_bytes(debugger.read_memory(0x4000, 8), "little")
    print(f"guest computed triple(12) = {result}")

    print("\n== transaction trace (first 6) ==")
    print(tracer.to_text(limit=6))

    print("\n== per-target statistics ==")
    for socket, stats in tracer.statistics().items():
        print(f"  {socket}: {stats}")

    print(f"\ntotal transactions observed: {len(tracer)}")


if __name__ == "__main__":
    main()
