#!/usr/bin/env python3
"""Quickstart: assemble a bare-metal guest, run it on the ARM-on-ARM VP.

Builds the smallest possible end-to-end setup:

1. assemble an A64-lite guest program that prints through the UART,
2. construct the AoA virtual platform (KVM-backed CPU model, GIC, timer,
   UART, RTC, SDHCI, RAM behind a TLM bus),
3. run the simulation and inspect console output + performance counters.

Run:  python examples/quickstart.py

With ``REPRO_TELEMETRY`` set, the run is additionally instrumented with
:mod:`repro.telemetry` (zero behaviour change) and writes a text run
report plus a Perfetto-loadable Chrome trace into the directory the
variable names (``REPRO_TELEMETRY=1`` uses the current directory).

With ``REPRO_FLIGHT`` set, the run carries the :mod:`repro.flight` black
box (also zero behaviour change) and writes the event journal
(``quickstart_journal.jsonl``) plus the guest profiler's outputs
(``quickstart_profile.folded`` / ``.json``) into the directory the
variable names (``REPRO_FLIGHT=1`` uses the current directory).
"""

import os

from repro.arch import assemble
from repro.systemc import SimTime
from repro.vp import GuestSoftware, VpConfig, build_platform

GUEST_SOURCE = """
.equ UART_HI, 0x0904            // PL011 data register lives at 0x0904_0000
.equ SIMCTL_HI, 0x090F          // simulation-control device

_start:
    movz x1, #UART_HI, lsl #16
    adr x2, message
print_loop:
    ldrb x3, [x2]
    cbz x3, finished
    strb x3, [x1]               // each store traps to the VP as MMIO
    add x2, x2, #1
    b print_loop
finished:
    movz x4, #SIMCTL_HI, lsl #16
    str x4, [x4]                // request shutdown
    hlt #0

message:
    .asciz "Hello from the ARM-on-ARM virtual platform!\\n"
"""


def main():
    image = assemble(GUEST_SOURCE, base_address=0x1000)
    print(f"assembled guest: {image}")

    software = GuestSoftware(image=image, mode="interpreter", name="quickstart")
    config = VpConfig(num_cores=1, quantum=SimTime.us(100), parallel=False)
    vp = build_platform("aoa", config, software)

    telemetry_dir = os.environ.get("REPRO_TELEMETRY")
    telemetry = None
    if telemetry_dir:
        from repro.telemetry import enable_telemetry
        telemetry = enable_telemetry(vp)

    flight_dir = os.environ.get("REPRO_FLIGHT")
    flight = None
    if flight_dir:
        from repro.flight import enable_flight
        # Sample every 10 modeled cycles: the guest is tiny, and a short
        # interval gives the profile real shape even on a hello-world.
        flight = enable_flight(vp, profile_interval=10)

    end_time = vp.run(SimTime.ms(100))

    print(f"simulated time : {end_time}")
    print(f"console output : {vp.console_output()!r}")
    print(f"instructions   : {vp.total_instructions()}")
    print(f"modeled wall   : {vp.wall_time_seconds() * 1e6:.1f} us")
    print(f"MMIO exits     : {vp.cpus[0].num_mmio}")
    print(f"KVM runs       : {vp.cpus[0].vcpu.num_runs}")

    if telemetry is not None:
        out_dir = "." if telemetry_dir == "1" else telemetry_dir
        os.makedirs(out_dir, exist_ok=True)
        report_path = os.path.join(out_dir, "quickstart_report.txt")
        trace_path = os.path.join(out_dir, "quickstart_trace.json")
        from repro.telemetry import write_run_report
        write_run_report(telemetry, report_path)
        telemetry.write_chrome_trace(trace_path)
        print()
        print(telemetry.report())
        print(f"run report     : {report_path}")
        print(f"chrome trace   : {trace_path} (open in ui.perfetto.dev)")

    if flight is not None:
        out_dir = "." if flight_dir == "1" else flight_dir
        os.makedirs(out_dir, exist_ok=True)
        journal_path = os.path.join(out_dir, "quickstart_journal.jsonl")
        folded_path = os.path.join(out_dir, "quickstart_profile.folded")
        profile_path = os.path.join(out_dir, "quickstart_profile.json")
        events = flight.write_journal(journal_path)
        flight.profiler.write_folded(folded_path)
        flight.profiler.write_json(profile_path)
        print()
        print(f"flight journal : {journal_path} ({events} events)")
        print(f"guest profile  : {folded_path} (feed to flamegraph.pl), "
              f"{profile_path}")
        top = sorted(flight.profiler.per_symbol().items(),
                     key=lambda item: -item[1])[:3]
        for symbol, cycles in top:
            print(f"  {cycles:8d} cycles  {symbol}")


if __name__ == "__main__":
    main()
