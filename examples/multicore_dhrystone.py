#!/usr/bin/env python3
"""Multicore bare-metal Dhrystone: the paper's Figure 5 in miniature.

Runs per-core Dhrystone instances on both virtual platforms across core
counts and parallelization settings and prints the accumulated MIPS,
showing the ~10x native-execution advantage, linear parallel scaling, and
the octa-core dip caused by the host's six performance cores.

Run:  python examples/multicore_dhrystone.py [--iterations 500000]
"""

import argparse

from repro.bench.measure import make_config, run_workload
from repro.workloads.dhrystone import DhrystoneParams, dhrystone_software


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--iterations", type=int, default=500_000,
                        help="Dhrystone iterations per core")
    parser.add_argument("--quantum-us", type=float, default=1000.0)
    args = parser.parse_args()
    params = DhrystoneParams(iterations=args.iterations)
    print(f"Dhrystone, {args.iterations} iterations/core "
          f"({params.instructions / 1e6:.0f}M instructions/core), "
          f"quantum {args.quantum_us:.0f} us\n")
    print(f"{'platform':>8} {'cores':>5} {'mode':>10} {'MIPS':>10} {'wall':>10}")
    baseline = {}
    for platform in ("avp64", "aoa"):
        for cores in (1, 2, 4, 8):
            for parallel in (False, True):
                software = dhrystone_software(cores, params)
                config = make_config(cores, args.quantum_us, parallel)
                metrics = run_workload(platform, config, software)
                mode = "parallel" if parallel else "sequential"
                print(f"{platform:>8} {cores:>5} {mode:>10} "
                      f"{metrics.mips:>10.0f} {metrics.wall_seconds:>8.3f} s")
                if cores == 1 and not parallel:
                    baseline[platform] = metrics.mips
    print(f"\nAoA vs AVP64 single-core: "
          f"{baseline['aoa'] / baseline['avp64']:.1f}x (paper: ~10x)")


if __name__ == "__main__":
    main()
