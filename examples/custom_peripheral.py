#!/usr/bin/env python3
"""Extend the VP with a custom peripheral — the pre-silicon driver story.

The paper motivates VPs with pre-silicon software bring-up: model a device
before the hardware exists and develop its driver against the model.  This
example does exactly that:

1. define a new register-mapped peripheral (an 8-channel PWM LED
   controller) in ~30 lines by subclassing :class:`repro.vcml.Peripheral`,
2. map it into the VP's address space next to the stock devices,
3. run a bare-metal "driver" (A64-lite assembly) that programs it,
4. observe the device state from the host side.

Because the KVM CPU model is a drop-in ISS replacement, the same guest
driver runs unchanged on the AVP64 platform too — swap "aoa" for "avp64".

Run:  python examples/custom_peripheral.py
"""

from repro.arch import assemble
from repro.systemc import SimTime
from repro.vcml import Access, Peripheral
from repro.vp import GuestSoftware, VpConfig, build_platform

LED_BASE = 0x0A00_0000


class PwmLedController(Peripheral):
    """8 LED channels: global ENABLE, per-channel duty-cycle registers.

    ======  ==========  =====================================
    offset  name        function
    ======  ==========  =====================================
    0x00    ENABLE      bit N enables channel N
    0x04    STATUS      read-only mirror of ENABLE
    0x10+4N DUTY[N]     duty cycle 0..255 for channel N
    ======  ==========  =====================================
    """

    CHANNELS = 8

    def __init__(self, name, parent=None):
        super().__init__(name, parent)
        self.enabled_mask = 0
        self.duty = [0] * self.CHANNELS
        self.add_register("enable", 0x00, on_read=lambda: self.enabled_mask,
                          on_write=self._write_enable)
        self.add_register("status", 0x04, access=Access.READ,
                          on_read=lambda: self.enabled_mask)
        for channel in range(self.CHANNELS):
            self.add_register(f"duty{channel}", 0x10 + 4 * channel,
                              on_read=lambda ch=channel: self.duty[ch],
                              on_write=lambda v, ch=channel: self._write_duty(ch, v))

    def _write_enable(self, value):
        self.enabled_mask = value & 0xFF

    def _write_duty(self, channel, value):
        self.duty[channel] = value & 0xFF

    def brightness(self, channel):
        """Host-side view: effective brightness in percent."""
        if not self.enabled_mask & (1 << channel):
            return 0.0
        return 100.0 * self.duty[channel] / 255.0


GUEST_DRIVER = """
.equ LED_HI, 0x0A00
.equ SIMCTL_HI, 0x090F

_start:
    movz x1, #LED_HI, lsl #16
    // ramp duty cycles: channel N gets N * 32
    movz x2, #0                 // channel index
    movz x3, #0                 // duty value
next_channel:
    lsl x4, x2, #2              // offset = 0x10 + 4 * channel
    add x4, x4, #0x10
    add x5, x1, x4
    strw x3, [x5]
    add x3, x3, #32
    add x2, x2, #1
    cmp x2, #8
    b.lo next_channel
    // enable channels 0..5
    movz x6, #0x3F
    strw x6, [x1]
    // sanity: read STATUS back
    ldrw x7, [x1, #4]
    movz x8, #SIMCTL_HI, lsl #16
    str x7, [x8, #0x10]         // record it as a checkpoint
    str x8, [x8]                // shutdown
    hlt #0
"""


def main():
    image = assemble(GUEST_DRIVER, base_address=0x1000)
    software = GuestSoftware(image=image, mode="interpreter", name="led-driver")
    config = VpConfig(num_cores=1, quantum=SimTime.us(100), parallel=False)
    vp = build_platform("aoa", config, software)

    # Drop the new device into the memory map — one line of integration.
    led = PwmLedController("led", parent=vp)
    vp.bus.map(LED_BASE, LED_BASE + 0xFFF, led.in_socket, name="led")

    vp.run(SimTime.ms(100))

    print("guest driver finished; device state as seen by the host:")
    for channel in range(PwmLedController.CHANNELS):
        state = "on " if led.enabled_mask & (1 << channel) else "off"
        bar = "#" * int(led.brightness(channel) / 5)
        print(f"  LED{channel}: {state} duty={led.duty[channel]:>3}  "
              f"{led.brightness(channel):5.1f}% {bar}")
    checkpoint = vp.simctl.checkpoints[0][0] if vp.simctl.checkpoints else None
    print(f"\nguest read back STATUS=0x{checkpoint:02X} (expected 0x3F)")
    print(f"register accesses handled: {led.num_reads} reads, {led.num_writes} writes")


if __name__ == "__main__":
    main()
