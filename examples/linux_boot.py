#!/usr/bin/env python3
"""Boot the synthetic Buildroot Linux and demonstrate WFI annotations.

Reproduces the essence of the paper's Figure 6 on one octa-core AoA VP:
the same boot, with and without WFI annotations, sequential and parallel —
showing how idle-loop simulation dominates the unannotated multicore boot.

Run:  python examples/linux_boot.py [--scale 0.02]
"""

import argparse

from repro.systemc import SimTime
from repro.vp import VpConfig, build_platform
from repro.vp.linux import LinuxBootParams, linux_boot_software


def boot_once(cores, quantum_us, parallel, annotations, params):
    software = linux_boot_software(cores, params)
    config = VpConfig(num_cores=cores, quantum=SimTime.us(quantum_us),
                      parallel=parallel, wfi_annotations=annotations)
    vp = build_platform("aoa", config, software)
    vp.simctl.on_boot_done = lambda _t: vp.sim.stop()
    vp.run(SimTime.seconds(500))
    suspends = sum(cpu.num_wfi_suspends for cpu in vp.cpus)
    return vp.wall_time_seconds(), vp.simctl.boot_done_at, suspends


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.02,
                        help="boot-work scale (1.0 = paper-sized, slower)")
    parser.add_argument("--cores", type=int, default=8)
    args = parser.parse_args()
    params = LinuxBootParams().scaled(args.scale)

    print(f"synthetic Buildroot boot, {args.cores} cores, scale {args.scale}")
    print(f"{'quantum':>8} {'mode':>10} {'annotations':>11} "
          f"{'boot wall':>12} {'sim time':>12} {'WFI suspends':>13}")
    for quantum_us in (100.0, 1000.0, 5000.0):
        for parallel in (False, True):
            for annotations in (False, True):
                wall, sim_time, suspends = boot_once(
                    args.cores, quantum_us, parallel, annotations, params)
                mode = "parallel" if parallel else "sequential"
                ann = "on" if annotations else "off"
                print(f"{quantum_us:>6.0f}us {mode:>10} {ann:>11} "
                      f"{wall:>10.3f} s {str(sim_time):>12} {suspends:>13}")
    print("\nObservations (cf. Fig. 6): sequential+unannotated boots burn a")
    print("full quantum of wall time per idle core per window; parallel mode")
    print("overlaps the idle cores; WFI annotations skip idle time entirely.")


if __name__ == "__main__":
    main()
