#!/usr/bin/env python3
"""RISC-V-on-RISC-V simulation — the paper's §VI future work, working.

Everything above the execution backend is ISA-agnostic: the simulated KVM,
the software watchdog with kick-id filtering, the quantum loop, the TLM
bus and peripherals.  This demo swaps the guest architecture to RV64IM
(real encodings, machine mode) and runs it through the *same*
:class:`KvmCpu` model the ARM guests use — including an MMIO-driven UART
and the in-kernel WFI path.

Run:  python examples/riscv_on_riscv.py
"""

from repro.arch.riscv import Rv64Builder, Rv64Interpreter, Rv64State
from repro.core.kvm_cpu import KvmCpu
from repro.core.watchdog import Watchdog
from repro.host.accounting import HostLedger
from repro.host.machine import apple_m2_pro
from repro.kvm.api import Kvm
from repro.models.uart import Pl011Uart
from repro.systemc.clock import Clock
from repro.systemc.kernel import Kernel
from repro.systemc.time import SimTime
from repro.tlm.quantum import GlobalQuantum
from repro.vcml.memory import Memory
from repro.vcml.router import Router

UART_BASE = 0x1000_0000
RAM_SIZE = 0x10000


def build_guest() -> bytes:
    """An RV64 guest: compute 10!, print a banner, halt."""
    rv = Rv64Builder(base=0)
    # factorial(10) in x5
    rv.li(5, 1)
    rv.li(6, 10)
    rv.label("loop")
    rv.mul(5, 5, 6)
    rv.addi(6, 6, -1)
    rv.bne(6, 0, "loop")
    # store the result for the host to inspect
    rv.li(7, 0x4000)
    rv.sd(5, 7, 0)
    # print "RV64!\n" through the PL011 (one MMIO exit per character)
    rv.lui(10, UART_BASE >> 12)
    for char in b"RV64!\n":
        rv.li(11, char)
        rv.sb(11, 10, 0)
    rv.halt()
    return rv.build()


def main():
    kernel = Kernel()
    bus = Router("bus")
    ram = Memory("ram", RAM_SIZE)
    uart = Pl011Uart("uart")
    bus.map(0, RAM_SIZE - 1, ram.in_socket, name="ram")
    bus.map(UART_BASE, UART_BASE + 0xFFF, uart.in_socket, name="uart")

    # Simulated KVM with the guest RAM mapped as a user memory slot.
    kvm = Kvm()
    vm = kvm.create_vm()
    vm.set_user_memory_region(0, 0, memoryview(ram.data))
    vm.memory.write(0, build_guest())

    # The RISC-V execution backend behind the unchanged ARM-era CPU model.
    state = Rv64State(hart_id=0)
    executor = Rv64Interpreter(state, vm.memory)
    vcpu = vm.create_vcpu(0, executor)

    quantum = GlobalQuantum(SimTime.us(100))
    cpu = KvmCpu("hart0", quantum, vcpu, Watchdog())
    cpu.bind_clock(Clock("clk", 1e9, kernel))
    cpu.data_socket.bind(bus.in_socket)
    cpu.host_ledger = HostLedger(quantum.quantum, False, apple_m2_pro(), 1)
    cpu.halt_callback = lambda _cpu: kernel.stop()
    cpu.start_of_simulation()

    kernel.run(SimTime.ms(10))

    factorial = int.from_bytes(ram.data[0x4000:0x4008], "little")
    print(f"console output : {uart.tx_text()!r}")
    print(f"guest computed : 10! = {factorial}")
    print(f"instructions   : {vcpu.total_instructions}")
    print(f"MMIO exits     : {cpu.num_mmio}")
    print(f"modeled wall   : {cpu.host_ledger.wall_time_ns() / 1e3:.1f} us")
    print()
    print("Same KvmCpu, same watchdog, same KVM model — different guest ISA.")
    assert factorial == 3628800


if __name__ == "__main__":
    main()
