#!/usr/bin/env python3
"""WFI annotations on a real (functional) guest — §IV-C end to end.

Runs a Linux-shaped bare-metal guest whose idle loop calls a genuine
``cpu_do_idle`` function containing a WFI, woken by periodic timer
interrupts through the GIC.  With annotations enabled the VP:

1. finds the ``cpu_do_idle`` symbol in the guest ELF,
2. locates the WFI instruction inside it,
3. plants a hardware breakpoint via KVM guest debug,
4. verifies the PC on every breakpoint exit, and
5. suspends the SystemC core model until the next interrupt.

The demo prints both configurations' modeled wall-clock time: identical
guest behaviour, drastically cheaper idling.

Run:  python examples/wfi_annotation_demo.py
"""

from repro.arch import assemble
from repro.systemc import SimTime
from repro.vp import GuestSoftware, VpConfig, build_platform

GUEST = """
.equ GICD_HI, 0x0800
.equ GICC_HI, 0x0801
.equ TIMER_HI, 0x0900
.equ UART_HI, 0x0904
.equ SIMCTL_HI, 0x090F
.equ TICKS_WANTED, 20

_start:
    movz x28, #0                 // tick counter
    adr x1, vectors
    msr VBAR_EL1, x1
    // GIC: distributor on, PPI 29 (timer) enabled, CPU interface on
    movz x2, #GICD_HI, lsl #16
    movz x3, #1
    strw x3, [x2]
    movz x4, #0x2000, lsl #16    // 1 << 29
    strw x4, [x2, #0x100]
    movz x5, #GICC_HI, lsl #16
    movz x6, #0xFF
    strw x6, [x5, #4]
    movz x6, #1
    strw x6, [x5]
    // timer: periodic tick every 6250 cycles = 100 us at 62.5 MHz
    movz x7, #TIMER_HI, lsl #16
    movz x8, #6250
    strw x8, [x7, #4]
    movz x8, #7
    strw x8, [x7]
    msr daifclr, #2

idle_loop:
    bl cpu_do_idle               // Linux-style: all idling goes through here
    cmp x28, #TICKS_WANTED
    b.lo idle_loop

    movz x9, #UART_HI, lsl #16
    movz x10, #0x2A              // '*'
    strb x10, [x9]
    movz x11, #SIMCTL_HI, lsl #16
    str x11, [x11]
    hlt #0

cpu_do_idle:
    dmb
    wfi
    ret

.align 256
vectors:
    b .                          // sync vector: unused
.org vectors + 0x80              // IRQ vector
    movz x12, #GICC_HI, lsl #16
    ldrw x13, [x12, #0xC]        // GICC_IAR
    movz x14, #TIMER_HI, lsl #16
    movz x15, #1
    strw x15, [x14, #0x10]       // timer INT_CLR
    strw x13, [x12, #0x10]       // GICC_EOIR
    add x28, x28, #1
    eret
"""


def run(annotations):
    image = assemble(GUEST, base_address=0x1000)
    software = GuestSoftware(image=image, mode="interpreter", name="idle-demo")
    config = VpConfig(num_cores=1, quantum=SimTime.us(250), parallel=False,
                      wfi_annotations=annotations)
    vp = build_platform("aoa", config, software)
    vp.run(SimTime.ms(50))
    assert vp.simctl.shutdown_requested, "guest did not finish"
    return vp


def main():
    plain = run(annotations=False)
    annotated = run(annotations=True)

    print("guest: 20 timer ticks through cpu_do_idle/WFI, then shutdown\n")
    for label, vp in (("without annotations", plain), ("with annotations", annotated)):
        cpu = vp.cpus[0]
        print(f"{label}:")
        print(f"  console             : {vp.console_output()!r}")
        print(f"  modeled wall clock  : {vp.wall_time_seconds() * 1e3:.3f} ms")
        print(f"  WFI suspends        : {cpu.num_wfi_suspends}")
        print(f"  in-kernel WFI blocks: {cpu.vcpu.num_wfi_blocks}")
        if vp.annotator is not None and vp.config.wfi_annotations:
            print(f"  annotated WFI at    : 0x{vp.annotator.primary_address:x} "
                  f"(inside cpu_do_idle)")
        print()
    speedup = plain.wall_time_seconds() / annotated.wall_time_seconds()
    print(f"annotation speedup on this guest: {speedup:.1f}x")


if __name__ == "__main__":
    main()
